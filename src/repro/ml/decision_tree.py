"""A CART-style decision tree for categorical features (§V-B2 substrate).

The paper trains scikit-learn 0.20's decision tree on the four COMPAS
demographic attributes.  This implementation performs *multiway* splits on
categorical attributes using Gini impurity, which matches the data model of
the rest of the library (integer-coded categories) and reproduces the
mechanism the experiment depends on: with no training examples from a
subgroup, the tree's predictions for that subgroup fall back to the
behaviour of the majority paths.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Optional

import numpy as np

from repro.exceptions import DataError


@dataclass
class _Node:
    """One tree node; a leaf when ``attribute`` is None."""

    prediction: int
    probability: float
    samples: int
    attribute: Optional[int] = None
    children: Dict[int, "_Node"] = field(default_factory=dict)

    @property
    def is_leaf(self) -> bool:
        return self.attribute is None


def _gini(labels: np.ndarray) -> float:
    """Gini impurity of a label vector."""
    if len(labels) == 0:
        return 0.0
    _, counts = np.unique(labels, return_counts=True)
    proportions = counts / counts.sum()
    return float(1.0 - np.square(proportions).sum())


class DecisionTreeClassifier:
    """Multiway categorical decision tree trained with Gini impurity.

    Args:
        max_depth: maximum number of split levels (None = unbounded, i.e.
            at most one split per attribute since splits are multiway).
        min_samples_split: do not split nodes smaller than this.
        min_impurity_decrease: require at least this Gini reduction.
    """

    def __init__(
        self,
        max_depth: Optional[int] = None,
        min_samples_split: int = 2,
        min_impurity_decrease: float = 0.0,
    ) -> None:
        if max_depth is not None and max_depth < 1:
            raise DataError(f"max_depth must be >= 1, got {max_depth}")
        if min_samples_split < 2:
            raise DataError(f"min_samples_split must be >= 2, got {min_samples_split}")
        self.max_depth = max_depth
        self.min_samples_split = min_samples_split
        self.min_impurity_decrease = min_impurity_decrease
        self._root: Optional[_Node] = None
        self._d: Optional[int] = None

    # ------------------------------------------------------------------
    # training
    # ------------------------------------------------------------------
    def fit(self, features: np.ndarray, labels: np.ndarray) -> "DecisionTreeClassifier":
        """Train on integer-coded categorical features."""
        features = np.asarray(features, dtype=np.int64)
        labels = np.asarray(labels, dtype=np.int64)
        if features.ndim != 2:
            raise DataError(f"features must be 2-D, got shape {features.shape}")
        if labels.ndim != 1 or labels.shape[0] != features.shape[0]:
            raise DataError(
                f"labels shape {labels.shape} incompatible with "
                f"features shape {features.shape}"
            )
        if features.shape[0] == 0:
            raise DataError("cannot train on an empty dataset")
        self._d = features.shape[1]
        usable = np.ones(self._d, dtype=bool)
        self._root = self._build(features, labels, usable, depth=0)
        return self

    def _majority(self, labels: np.ndarray) -> tuple:
        values, counts = np.unique(labels, return_counts=True)
        best = int(np.argmax(counts))
        return int(values[best]), float(counts[best] / counts.sum())

    def _build(
        self,
        features: np.ndarray,
        labels: np.ndarray,
        usable: np.ndarray,
        depth: int,
    ) -> _Node:
        prediction, probability = self._majority(labels)
        node = _Node(prediction, probability, len(labels))
        if (
            len(labels) < self.min_samples_split
            or (self.max_depth is not None and depth >= self.max_depth)
            or _gini(labels) == 0.0
            or not usable.any()
        ):
            return node

        parent_impurity = _gini(labels)
        best_attribute = None
        best_gain = self.min_impurity_decrease
        for attribute in np.nonzero(usable)[0]:
            column = features[:, attribute]
            values = np.unique(column)
            if len(values) < 2:
                continue
            weighted = 0.0
            for value in values:
                subset = labels[column == value]
                weighted += len(subset) / len(labels) * _gini(subset)
            gain = parent_impurity - weighted
            if gain > best_gain:
                best_gain = gain
                best_attribute = int(attribute)
        if best_attribute is None:
            return node

        node.attribute = best_attribute
        child_usable = usable.copy()
        child_usable[best_attribute] = False
        column = features[:, best_attribute]
        for value in np.unique(column):
            selector = column == value
            node.children[int(value)] = self._build(
                features[selector], labels[selector], child_usable, depth + 1
            )
        return node

    # ------------------------------------------------------------------
    # prediction
    # ------------------------------------------------------------------
    def _check_fitted(self) -> _Node:
        if self._root is None:
            raise DataError("classifier is not fitted; call fit() first")
        return self._root

    def predict(self, features: np.ndarray) -> np.ndarray:
        """Predict a label per row; unseen category values fall back to the
        deepest matching node's majority (the generalization behaviour the
        paper's experiment exposes)."""
        root = self._check_fitted()
        features = np.asarray(features, dtype=np.int64)
        if features.ndim != 2 or features.shape[1] != self._d:
            raise DataError(
                f"features must be (n, {self._d}); got shape {features.shape}"
            )
        out = np.empty(features.shape[0], dtype=np.int64)
        for i, row in enumerate(features):
            node = root
            while not node.is_leaf:
                child = node.children.get(int(row[node.attribute]))
                if child is None:
                    break
                node = child
            out[i] = node.prediction
        return out

    def predict_proba(self, features: np.ndarray) -> np.ndarray:
        """Probability of the predicted class per row (leaf purity)."""
        root = self._check_fitted()
        features = np.asarray(features, dtype=np.int64)
        out = np.empty(features.shape[0], dtype=float)
        for i, row in enumerate(features):
            node = root
            while not node.is_leaf:
                child = node.children.get(int(row[node.attribute]))
                if child is None:
                    break
                node = child
            out[i] = node.probability
        return out

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def depth(self) -> int:
        """Depth of the trained tree (0 for a single leaf)."""
        root = self._check_fitted()

        def walk(node: _Node) -> int:
            if node.is_leaf:
                return 0
            return 1 + max(walk(child) for child in node.children.values())

        return walk(root)

    def node_count(self) -> int:
        """Total number of nodes in the trained tree."""
        root = self._check_fitted()

        def walk(node: _Node) -> int:
            return 1 + sum(walk(child) for child in node.children.values())

        return walk(root)
