"""Machine-learning substrate for the paper's §V-B2 experiments.

scikit-learn (the paper's tool) is unavailable offline, so this package
implements a CART-style decision tree for categorical features, the
accuracy / F1 metrics, cross-validation, and the subgroup evaluation
harness behind Figure 11 — all from scratch.
"""

from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.metrics import accuracy_score, confusion_matrix, f1_score, train_test_split
from repro.ml.model_eval import cross_validate, subgroup_coverage_experiment

__all__ = [
    "DecisionTreeClassifier",
    "accuracy_score",
    "confusion_matrix",
    "f1_score",
    "train_test_split",
    "cross_validate",
    "subgroup_coverage_experiment",
]
