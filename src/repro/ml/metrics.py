"""Classification metrics and splits used by the §V-B2 experiments."""

from __future__ import annotations

from typing import Tuple

import numpy as np

from repro.exceptions import DataError


def _check_pair(y_true: np.ndarray, y_pred: np.ndarray) -> Tuple[np.ndarray, np.ndarray]:
    y_true = np.asarray(y_true)
    y_pred = np.asarray(y_pred)
    if y_true.shape != y_pred.shape or y_true.ndim != 1:
        raise DataError(
            f"label vectors must be 1-D and equal length; got "
            f"{y_true.shape} vs {y_pred.shape}"
        )
    if y_true.shape[0] == 0:
        raise DataError("cannot score empty label vectors")
    return y_true, y_pred


def accuracy_score(y_true, y_pred) -> float:
    """Fraction of exact label matches."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    return float((y_true == y_pred).mean())


def confusion_matrix(y_true, y_pred, positive: int = 1) -> Tuple[int, int, int, int]:
    """Binary confusion counts ``(tp, fp, fn, tn)`` for the positive class."""
    y_true, y_pred = _check_pair(y_true, y_pred)
    tp = int(np.sum((y_true == positive) & (y_pred == positive)))
    fp = int(np.sum((y_true != positive) & (y_pred == positive)))
    fn = int(np.sum((y_true == positive) & (y_pred != positive)))
    tn = int(np.sum((y_true != positive) & (y_pred != positive)))
    return tp, fp, fn, tn


def precision_score(y_true, y_pred, positive: int = 1) -> float:
    """Precision for the positive class (0 when nothing predicted positive)."""
    tp, fp, _fn, _tn = confusion_matrix(y_true, y_pred, positive)
    return tp / (tp + fp) if (tp + fp) else 0.0


def recall_score(y_true, y_pred, positive: int = 1) -> float:
    """Recall for the positive class (0 when no positives exist)."""
    tp, _fp, fn, _tn = confusion_matrix(y_true, y_pred, positive)
    return tp / (tp + fn) if (tp + fn) else 0.0


def f1_score(y_true, y_pred, positive: int = 1) -> float:
    """F1 measure for the positive class."""
    precision = precision_score(y_true, y_pred, positive)
    recall = recall_score(y_true, y_pred, positive)
    if precision + recall == 0.0:
        return 0.0
    return 2.0 * precision * recall / (precision + recall)


def train_test_split(
    n: int, test_fraction: float = 0.25, seed: int = 0
) -> Tuple[np.ndarray, np.ndarray]:
    """Shuffled index split; returns ``(train_indices, test_indices)``."""
    if not 0.0 < test_fraction < 1.0:
        raise DataError(f"test_fraction must be in (0, 1), got {test_fraction}")
    if n < 2:
        raise DataError(f"need at least 2 rows to split, got {n}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    cut = max(1, int(round(n * test_fraction)))
    return order[cut:], order[:cut]
