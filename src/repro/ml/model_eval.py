"""Model evaluation harness: cross-validation and the Figure 11 experiment.

Figure 11 trains a decision tree on COMPAS demographics with
{0, 20, 40, 60, 80} Hispanic-female (HF) rows in the training data and
scores a fixed 20-HF test set; overall accuracy stays flat (~0.76) while
subgroup accuracy climbs as the lack of coverage is remedied.
:func:`subgroup_coverage_experiment` reproduces that protocol for any
subgroup predicate.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, List, Sequence, Tuple

import numpy as np

from repro.data.dataset import Dataset
from repro.exceptions import DataError
from repro.ml.decision_tree import DecisionTreeClassifier
from repro.ml.metrics import accuracy_score, f1_score


def cross_validate(
    features: np.ndarray,
    labels: np.ndarray,
    folds: int = 5,
    seed: int = 0,
    model_factory: Callable[[], DecisionTreeClassifier] = DecisionTreeClassifier,
) -> Tuple[float, float]:
    """K-fold cross-validation; returns mean ``(accuracy, f1)``.

    This is the check the paper's data scientist runs first ("acceptable
    accuracy and f1 measures of 0.76 and 0.7 over a random test set").
    """
    features = np.asarray(features)
    labels = np.asarray(labels)
    n = features.shape[0]
    if folds < 2 or folds > n:
        raise DataError(f"folds must be in [2, {n}], got {folds}")
    rng = np.random.default_rng(seed)
    order = rng.permutation(n)
    accuracy_values: List[float] = []
    f1_values: List[float] = []
    for fold in range(folds):
        test_indices = order[fold::folds]
        train_indices = np.setdiff1d(order, test_indices, assume_unique=False)
        model = model_factory()
        model.fit(features[train_indices], labels[train_indices])
        predictions = model.predict(features[test_indices])
        accuracy_values.append(accuracy_score(labels[test_indices], predictions))
        f1_values.append(f1_score(labels[test_indices], predictions))
    return float(np.mean(accuracy_values)), float(np.mean(f1_values))


@dataclass(frozen=True)
class SubgroupExperimentRow:
    """One x-axis point of Figure 11.

    Attributes:
        subgroup_in_training: number of subgroup rows included in training.
        subgroup_accuracy: accuracy on the held-out subgroup test set.
        subgroup_f1: F1 on the held-out subgroup test set.
        overall_accuracy: accuracy on a random held-out test set.
        overall_f1: F1 on that random test set.
    """

    subgroup_in_training: int
    subgroup_accuracy: float
    subgroup_f1: float
    overall_accuracy: float
    overall_f1: float


def subgroup_coverage_experiment(
    dataset: Dataset,
    label_name: str,
    subgroup_mask: np.ndarray,
    increments: Sequence[int] = (0, 20, 40, 60, 80),
    test_size: int = 20,
    seed: int = 7,
    model_factory: Callable[[], DecisionTreeClassifier] = DecisionTreeClassifier,
) -> List[SubgroupExperimentRow]:
    """Reproduce the Figure 11 protocol for an arbitrary subgroup.

    Args:
        dataset: dataset with the observation attributes of interest.
        label_name: name of the binary label column.
        subgroup_mask: boolean row mask selecting the subgroup.
        increments: how many subgroup rows to include in training per run.
        test_size: size of the fixed subgroup test set.
        seed: RNG seed for all splits.
        model_factory: classifier constructor.

    Returns:
        One :class:`SubgroupExperimentRow` per increment.
    """
    subgroup_mask = np.asarray(subgroup_mask, dtype=bool)
    if subgroup_mask.shape[0] != dataset.n:
        raise DataError(
            f"mask has {subgroup_mask.shape[0]} entries for {dataset.n} rows"
        )
    features = dataset.rows
    labels = np.asarray(dataset.label(label_name))
    subgroup_indices = np.nonzero(subgroup_mask)[0]
    rest_indices = np.nonzero(~subgroup_mask)[0]
    needed = test_size + max(increments)
    if len(subgroup_indices) < needed:
        raise DataError(
            f"subgroup has {len(subgroup_indices)} rows; the experiment "
            f"needs at least {needed}"
        )
    rng = np.random.default_rng(seed)
    shuffled = rng.permutation(subgroup_indices)
    subgroup_test = shuffled[:test_size]
    subgroup_pool = shuffled[test_size:]

    # A fixed random overall test set drawn from the non-subgroup rows so
    # the "overall" measure is insensitive to how many subgroup rows are in
    # training (matching the paper's flat 76% line).
    rest_shuffled = rng.permutation(rest_indices)
    overall_test = rest_shuffled[: max(1, len(rest_indices) // 5)]
    rest_train = rest_shuffled[len(overall_test):]

    rows: List[SubgroupExperimentRow] = []
    for count in increments:
        train_indices = np.concatenate([rest_train, subgroup_pool[:count]])
        model = model_factory()
        model.fit(features[train_indices], labels[train_indices])
        subgroup_pred = model.predict(features[subgroup_test])
        overall_pred = model.predict(features[overall_test])
        rows.append(
            SubgroupExperimentRow(
                subgroup_in_training=int(count),
                subgroup_accuracy=accuracy_score(labels[subgroup_test], subgroup_pred),
                subgroup_f1=f1_score(labels[subgroup_test], subgroup_pred),
                overall_accuracy=accuracy_score(labels[overall_test], overall_pred),
                overall_f1=f1_score(labels[overall_test], overall_pred),
            )
        )
    return rows


def removed_subgroup_accuracy(
    dataset: Dataset,
    label_name: str,
    subgroup_mask: np.ndarray,
    test_size: int = 20,
    seed: int = 7,
    model_factory: Callable[[], DecisionTreeClassifier] = DecisionTreeClassifier,
) -> float:
    """Accuracy on a subgroup after removing it entirely from training.

    This is the paper's FO (female, other races) / MO (male, other races)
    spot check: 0.39 and 0.59 respectively.
    """
    rows = subgroup_coverage_experiment(
        dataset,
        label_name,
        subgroup_mask,
        increments=(0,),
        test_size=test_size,
        seed=seed,
        model_factory=model_factory,
    )
    return rows[0].subgroup_accuracy
