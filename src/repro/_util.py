"""Small internal helpers shared across the package."""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Iterable, Iterator, Sequence


def product_int(values: Iterable[int]) -> int:
    """Integer product of an iterable (empty product is 1).

    Used for value-combination counts, where ``math.prod`` would also work;
    kept explicit so intent is clear at call sites.
    """
    result = 1
    for value in values:
        result *= value
    return result


def check_positive(name: str, value: int) -> int:
    """Validate that ``value`` is a positive integer and return it."""
    if not isinstance(value, (int,)) or isinstance(value, bool) or value <= 0:
        raise ValueError(f"{name} must be a positive integer, got {value!r}")
    return value


class Stopwatch:
    """Monotonic stopwatch used to report algorithm runtimes in results."""

    def __init__(self) -> None:
        self._start = time.perf_counter()

    def elapsed(self) -> float:
        """Seconds since construction."""
        return time.perf_counter() - self._start


@dataclass
class SearchStats:
    """Counters describing the work a traversal algorithm performed.

    Attributes:
        nodes_generated: candidate pattern nodes produced by the traversal.
        coverage_evaluations: how many times the coverage oracle was consulted.
        dominance_checks: how many MUP-dominance queries were issued.
        pruned: nodes skipped thanks to monotonicity/dominance pruning.
        seconds: wall-clock time of the run.
    """

    nodes_generated: int = 0
    coverage_evaluations: int = 0
    dominance_checks: int = 0
    pruned: int = 0
    seconds: float = 0.0

    def as_dict(self) -> dict:
        return {
            "nodes_generated": self.nodes_generated,
            "coverage_evaluations": self.coverage_evaluations,
            "dominance_checks": self.dominance_checks,
            "pruned": self.pruned,
            "seconds": self.seconds,
        }


def chunked(sequence: Sequence, size: int) -> Iterator[Sequence]:
    """Yield consecutive slices of ``sequence`` of at most ``size`` items."""
    check_positive("size", size)
    for start in range(0, len(sequence), size):
        yield sequence[start : start + size]


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render a list of rows as a plain-text aligned table.

    Benchmarks use this to print the same rows/series the paper reports.
    """
    materialized = [[str(cell) for cell in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for i, cell in enumerate(row):
            widths[i] = max(widths[i], len(cell))
    def fmt(cells: Sequence[str]) -> str:
        return "  ".join(cell.ljust(widths[i]) for i, cell in enumerate(cells))
    lines = [fmt(list(headers)), fmt(["-" * w for w in widths])]
    lines.extend(fmt(row) for row in materialized)
    return "\n".join(lines)
