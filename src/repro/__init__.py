"""repro — a reproduction of *Assessing and Remedying Coverage for a Given
Dataset* (Asudeh, Jin, Jagadish; ICDE 2019).

The public API re-exports the pieces a typical user needs:

* build a :class:`~repro.data.Dataset` over categorical attributes;
* identify the maximal uncovered patterns with :func:`find_mups`
  (PATTERN-BREAKER, PATTERN-COMBINER, DEEPDIVER, plus naive and APRIORI
  baselines);
* plan the minimum additional data collection with
  :func:`~repro.core.enhancement.greedy.enhance_coverage`, optionally
  constrained by a :class:`~repro.core.enhancement.ValidationOracle`;
* print the coverage widget of a dataset nutritional label with
  :func:`~repro.analysis.coverage_label`.

Quickstart::

    from repro import Dataset, find_mups

    data = Dataset.from_rows([[0, 1, 0], [0, 0, 1], ...])
    result = find_mups(data, threshold=5)
    for mup in result:
        print(mup, mup.describe(data.schema))
"""

from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.core.engine import (
    ENGINES,
    KERNEL_TIERS,
    CoverageEngine,
    DenseBoolEngine,
    EngineConfig,
    EnginePlan,
    PackedBitsetEngine,
    ShardedEngine,
    get_kernels,
    numba_available,
    plan_engine,
    resolve_engine,
)
from repro.core.coverage import CoverageOracle, coverage_scan, max_covered_level
from repro.core.dominance import MupDominanceIndex
from repro.core.mups import (
    MupResult,
    find_mups,
    naive_mups,
    pattern_breaker,
    pattern_combiner,
    deepdiver,
    apriori_mups,
)
from repro.core.incremental import IncrementalMupIndex
from repro.core.enhancement import (
    EnhancementResult,
    ValidationOracle,
    ValidationRule,
    enhance_coverage,
    greedy_cover,
    naive_greedy_cover,
    targets_by_value_count,
    uncovered_at_level,
)
from repro.data import Dataset, Schema
from repro.analysis import coverage_label, mup_report, enhancement_report
from repro.analysis.hierarchy import (
    HierarchyStack,
    bucketize_sweep,
    find_mups_hierarchical,
)

__version__ = "1.0.0"

__all__ = [
    "Pattern",
    "X",
    "PatternSpace",
    "CoverageEngine",
    "DenseBoolEngine",
    "PackedBitsetEngine",
    "ShardedEngine",
    "EngineConfig",
    "EnginePlan",
    "plan_engine",
    "ENGINES",
    "KERNEL_TIERS",
    "get_kernels",
    "numba_available",
    "resolve_engine",
    "CoverageOracle",
    "coverage_scan",
    "max_covered_level",
    "MupDominanceIndex",
    "MupResult",
    "IncrementalMupIndex",
    "find_mups",
    "naive_mups",
    "pattern_breaker",
    "pattern_combiner",
    "deepdiver",
    "apriori_mups",
    "EnhancementResult",
    "ValidationOracle",
    "ValidationRule",
    "enhance_coverage",
    "greedy_cover",
    "naive_greedy_cover",
    "targets_by_value_count",
    "uncovered_at_level",
    "Dataset",
    "Schema",
    "coverage_label",
    "mup_report",
    "enhancement_report",
    "HierarchyStack",
    "find_mups_hierarchical",
    "bucketize_sweep",
    "__version__",
]
