"""Command-line interface: ``repro-coverage`` / ``python -m repro``.

Subcommands:

* ``identify`` — run MUP identification on a CSV file.
* ``label`` — print the nutritional-label coverage widget for a CSV file.
* ``enhance`` — plan an acquisition for a CSV file and a target level λ.
* ``sweep`` — amortized threshold sweep with a MUP sensitivity report.
* ``hierarchy`` — hierarchical MUP search over generalization lattices.
* ``bucketsweep`` — τ-coverage across bucket counts for a numeric column.
* ``demo`` — run the COMPAS walk-through on the bundled simulator.
* ``serve`` — run the persistent HTTP/JSON coverage service.
* ``worker`` — run a standalone shard worker for socket fan-out.

CSV files are expected to contain integer-coded categorical columns; use
``--attributes`` to select the attributes of interest.
"""

from __future__ import annotations

import argparse
import asyncio
import csv
import json
import os
import sys
from contextlib import contextmanager
from typing import Iterator, List, Optional, Sequence

from repro._util import format_table
from repro.analysis.hierarchy import HierarchyStack
from repro.analysis.nutrition import coverage_label
from repro.analysis.report import enhancement_report, mup_report
from repro.analysis.sweep import (
    SensitivityReport,
    parse_tau_range,
    threshold_sensitivity,
)
from repro.core.coverage import CoverageOracle
from repro.core.engine import (
    AUTO,
    DEFAULT_ARRAY_CUTOFF,
    DEFAULT_RUN_CUTOFF,
    DEFAULT_SHARDS,
    DEFAULT_WORKERS_MODE,
    ENGINES,
    KERNEL_TIERS,
    WORKERS_MODES,
    CoverageEngine,
    EngineConfig,
    engine_name,
    plan_engine,
    resolve_engine,
)
from repro.core.enhancement.greedy import greedy_cover
from repro.core.enhancement.expansion import uncovered_at_level
from repro.core.enhancement.oracle import ValidationOracle, ValidationRule
from repro.core.mups.base import ALGORITHMS, algorithm_query_shape, find_mups
from repro.core.pattern_graph import PatternSpace
from repro.data.compas import load_compas
from repro.data.dataset import Dataset
from repro.exceptions import ReproError, ValidationError


def _load_csv(path: str, attributes: Optional[Sequence[str]]) -> Dataset:
    """Read an integer-coded CSV with a header row into a Dataset."""
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        rows = [[int(cell) for cell in row] for row in reader if row]
    dataset = Dataset.from_rows(rows, names=header)
    if attributes:
        dataset = dataset.project(list(attributes))
    return dataset


def _load_csv_numeric(
    path: str, column: str, attributes: Optional[Sequence[str]]
) -> tuple:
    """Read a CSV whose ``column`` is numeric (float), the rest int-coded.

    Returns ``(dataset, values)``: the categorical dataset without the
    numeric column, plus the numeric column as floats.
    """
    with open(path, newline="") as handle:
        reader = csv.reader(handle)
        header = next(reader)
        if column not in header:
            raise ReproError(f"column {column!r} not in CSV header {header}")
        numeric = header.index(column)
        values: List[float] = []
        rows = []
        for row in reader:
            if not row:
                continue
            values.append(float(row[numeric]))
            rows.append(
                [int(cell) for i, cell in enumerate(row) if i != numeric]
            )
    names = [name for name in header if name != column]
    dataset = Dataset.from_rows(rows, names=names)
    if attributes:
        dataset = dataset.project(list(attributes))
    return dataset, values


def _parse_hierarchy_spec(dataset: Dataset, path: str) -> HierarchyStack:
    """Load a hierarchy-stack spec from a JSON file.

    Format: ``{"attr": [level, ...], ...}`` where each level maps the
    attribute's *base* codes to that level's groups — either a plain list
    of group codes or ``{"groups": [...], "labels": [...]}``.
    """
    from repro.data.hierarchy import AttributeHierarchy

    with open(path) as handle:
        spec = json.load(handle)
    if not isinstance(spec, dict) or not spec:
        raise ReproError(
            "hierarchy spec must be a JSON object mapping attribute names "
            "to lists of levels"
        )
    chains = {}
    for name, levels in spec.items():
        chain = []
        for level in levels:
            if isinstance(level, dict):
                chain.append(
                    AttributeHierarchy.of(
                        name, level["groups"], level.get("labels")
                    )
                )
            else:
                chain.append(AttributeHierarchy.of(name, level))
        chains[name] = chain
    return HierarchyStack.of(dataset, chains)


def _add_common(parser: argparse.ArgumentParser) -> None:
    parser.add_argument("csv", help="path to an integer-coded CSV file")
    parser.add_argument(
        "--attributes",
        nargs="+",
        help="attributes of interest (default: all columns)",
    )
    parser.add_argument(
        "--threshold", type=int, required=True, help="coverage threshold τ"
    )
    parser.add_argument(
        "--algorithm",
        default="deepdiver",
        choices=sorted(ALGORITHMS),
        help="MUP identification algorithm",
    )
    parser.add_argument(
        "--max-level", type=int, default=None, help="level cap for the search"
    )
    _add_engine_options(parser)


def _add_engine_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--engine",
        default=AUTO,
        choices=sorted(ENGINES) + [AUTO],
        help="coverage-engine backend (default 'auto': a workload-aware "
        "planner inspects the dataset and escalates dense -> packed -> "
        "sharded -> out-of-core as the projected index grows, detouring "
        "to 'compressed' on sparse value domains); 'dense' uses unpacked "
        "boolean vectors (reference), 'packed' uses uint64 bitsets with "
        "word-level popcount (8x smaller index), 'sharded' partitions the "
        "packed index row-wise for bounded per-kernel working sets, "
        "'compressed' stores roaring-style chunked containers whose "
        "footprint tracks the data's density",
    )
    parser.add_argument(
        "--kernel-tier",
        default=None,
        choices=sorted(KERNEL_TIERS),
        help="inner-loop kernel tier (default 'auto': numba-jitted kernels "
        "when numba is importable, bit-identical pure-python/numpy "
        "otherwise); 'jit' requires numba (pip install '.[jit]') and "
        "errors without it, 'python' forces the fallback; the REPRO_KERNELS "
        "environment variable sets the same switch process-wide",
    )
    parser.add_argument(
        "--explain-plan",
        action="store_true",
        help="print the engine plan (chosen backend + rationale, including "
        "the query-shape/kernel-tier cost model) before running the "
        "command",
    )
    parser.add_argument(
        "--shards",
        type=int,
        default=None,
        help="shard count for --engine sharded (clamped to the number of "
        f"distinct value combinations; default {DEFAULT_SHARDS})",
    )
    parser.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker-pool size for --engine sharded shard fan-out "
        "(default: evaluate shards serially)",
    )
    parser.add_argument(
        "--workers-mode",
        default=None,
        choices=sorted(WORKERS_MODES),
        help="shard fan-out pool (default "
        f"{DEFAULT_WORKERS_MODE}): 'thread' works in every mode; 'process' "
        "attaches child processes to the spill files by path (requires "
        "--spill-dir with --engine sharded; falls back to threads without "
        "fork support); 'socket' places shards on long-lived worker "
        "processes over the socket protocol — spawn-local by default, or "
        "the --worker-endpoints hosts (requires --spill-dir with "
        "--engine sharded)",
    )
    parser.add_argument(
        "--worker-endpoints",
        nargs="+",
        metavar="HOST:PORT",
        default=None,
        help="standing `repro-coverage worker` addresses for "
        "--workers-mode socket (default: spawn --workers local workers)",
    )
    parser.add_argument(
        "--delta-spill",
        action="store_true",
        default=None,
        help="let rebuilds over appended data reuse the spill directory "
        "via delta writes: unchanged shards are hard-linked, only dirty "
        "shards re-serialize (requires --spill-dir with --engine sharded)",
    )
    parser.add_argument(
        "--spill-dir",
        default=None,
        help="run out-of-core: serialize shard blocks into a unique "
        "subdirectory of this path and stream them via mmap (removed when "
        "the run finishes); with --engine auto this forces the out-of-core "
        "mode",
    )
    parser.add_argument(
        "--max-resident-bytes",
        type=int,
        default=None,
        help="byte budget for resident mmap shard slices (with --engine "
        "sharded requires --spill-dir; with --engine auto this is the "
        "planner's memory budget — the planner goes out-of-core when the "
        "projected index exceeds it)",
    )
    parser.add_argument(
        "--array-cutoff",
        type=int,
        default=None,
        help="largest container cardinality kept as a sorted uint16 array "
        "for --engine compressed (1..65536, default "
        f"{DEFAULT_ARRAY_CUTOFF}); with --engine auto this forces the "
        "compressed backend",
    )
    parser.add_argument(
        "--run-cutoff",
        type=int,
        default=None,
        help="largest interval count kept as a run container for --engine "
        f"compressed (default {DEFAULT_RUN_CUTOFF}); with --engine auto "
        "this forces the compressed backend",
    )


def _build_engine(
    args: argparse.Namespace,
    dataset: Dataset,
    query_shape: Optional[str] = None,
) -> CoverageEngine:
    """The engine selected by the CLI flags, built against ``dataset``.

    The flags are lifted into one declarative :class:`EngineConfig`
    (whose ``validate()`` holds every cross-flag rule — programmatic
    callers constructing configs get identical errors), planned when the
    backend is ``auto``, and built.  ``--explain-plan`` prints the plan's
    rationale before the command runs.
    """
    config = EngineConfig.from_cli_args(args)
    # The workload fixes how the engine will be queried (DFS point probes
    # vs level-sweep batches vs a whole amortized τ sweep); plan with that
    # shape so the cost model's ceiling matches.  Commands that run a
    # single algorithm derive the shape from it (demo runs deepdiver);
    # `sweep` passes its shape explicitly.
    if query_shape is None:
        query_shape = algorithm_query_shape(
            getattr(args, "algorithm", "deepdiver")
        )
    plan = plan_engine(dataset, config, query_shape=query_shape)
    if getattr(args, "explain_plan", False):
        print(plan.describe())
        print()
    # Unset options stay None in the plan; the backend constructors apply
    # their own defaults (e.g. an explicit --engine sharded without
    # --shards builds the stock shard count).
    return resolve_engine(plan.config, dataset)


@contextmanager
def _engine_scope(
    args: argparse.Namespace,
    dataset: Dataset,
    query_shape: Optional[str] = None,
) -> Iterator[CoverageEngine]:
    """Build the CLI-selected engine and close it when the command ends.

    Engines are closed explicitly so worker pools shut down and
    out-of-core spill directories are removed when the run finishes, not
    whenever GC gets around to it.
    """
    engine = _build_engine(args, dataset, query_shape=query_shape)
    try:
        yield engine
    finally:
        engine.close()


def _cmd_identify(args: argparse.Namespace) -> int:
    dataset = _load_csv(args.csv, args.attributes)
    with _engine_scope(args, dataset) as engine:
        # One oracle serves both the search and the report, so the inverted
        # index is built once.
        oracle = CoverageOracle(dataset, engine=engine)
        result = find_mups(
            dataset,
            threshold=args.threshold,
            algorithm=args.algorithm,
            max_level=args.max_level,
            oracle=oracle,
        )
        print(mup_report(dataset, result, limit=args.limit, oracle=oracle))
    return 0


def _cmd_label(args: argparse.Namespace) -> int:
    dataset = _load_csv(args.csv, args.attributes)
    with _engine_scope(args, dataset) as engine:
        label = coverage_label(
            dataset,
            threshold=args.threshold,
            algorithm=args.algorithm,
            max_level=args.max_level,
            engine=engine,
        )
        print(label.render())
    return 0


def _render_sensitivity(report: SensitivityReport, limit: int) -> str:
    """Plain-text sensitivity report: the τ curve, diffs, and breakpoints."""
    lines = [
        f"threshold sweep over τ ∈ [{report.thresholds[0]}, "
        f"{report.thresholds[-1]}] ({len(report.thresholds)} settings)",
        "",
    ]
    rows = []
    for tau in report.thresholds:
        rows.append(
            [
                tau,
                report.counts[tau],
                len(report.appeared.get(tau, ())),
                len(report.disappeared.get(tau, ())),
            ]
        )
    lines.append(
        format_table(["tau", "mups", "appeared", "disappeared"], rows)
    )
    if report.transitions:
        lines.append("")
        lines.append(f"τ* breakpoints (first {limit}):")
        rows = [
            [
                str(t.pattern),
                t.appears_at,
                "-" if t.disappears_above is None else t.disappears_above,
            ]
            for t in report.transitions[:limit]
        ]
        lines.append(
            format_table(["pattern", "appears at", "disappears above"], rows)
        )
        if len(report.transitions) > limit:
            lines.append(f"... {len(report.transitions) - limit} more")
    if report.bootstrap_replicates:
        lines.append("")
        lines.append(
            f"bootstrap support over {report.bootstrap_replicates} "
            f"replicates (seed {report.seed}):"
        )
        rows = []
        for tau in report.thresholds:
            table = report.support.get(tau, {})
            fragile = sum(1 for s in table.values() if s < 1.0)
            mean = (
                sum(table.values()) / len(table) if table else 1.0
            )
            rows.append(
                [
                    tau,
                    f"{mean:.2f}",
                    fragile,
                    f"{report.novel_rate.get(tau, 0.0):.1f}",
                ]
            )
        lines.append(
            format_table(
                ["tau", "mean support", "fragile mups", "novel/replicate"],
                rows,
            )
        )
    return "\n".join(lines)


def _cmd_sweep(args: argparse.Namespace) -> int:
    dataset = _load_csv(args.csv, args.attributes)
    if args.tau_range is not None:
        thresholds = parse_tau_range(args.tau_range)
    else:
        thresholds = tuple(args.thresholds)
    with _engine_scope(args, dataset, query_shape="sweep") as engine:
        oracle = CoverageOracle(dataset, engine=engine)
        report = threshold_sensitivity(
            dataset,
            thresholds,
            max_level=args.max_level,
            oracle=oracle,
            bootstrap=args.bootstrap,
            seed=args.seed,
        )
    if args.json:
        print(json.dumps(report.as_dict(), indent=2, sort_keys=True))
    else:
        print(_render_sensitivity(report, limit=args.limit))
    return 0


def _cmd_hierarchy(args: argparse.Namespace) -> int:
    from repro.analysis.hierarchy import find_mups_hierarchical

    dataset = _load_csv(args.csv, args.attributes)
    stack = _parse_hierarchy_spec(dataset, args.hierarchy)
    with _engine_scope(args, dataset, query_shape="hierarchy") as engine:
        oracle = CoverageOracle(dataset, engine=engine)
        result = find_mups_hierarchical(
            dataset,
            stack,
            threshold=args.threshold,
            max_level=args.max_level,
            oracle=oracle,
            remedies=not args.no_remedies,
        )
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
        return 0
    rows = []
    for entry in reversed(result.levels):  # coarsest first, like the search
        mup_result = entry.result
        rows.append(
            [
                entry.level,
                "x".join(str(c) for c in entry.rollup.dataset.cardinalities),
                len(mup_result),
                mup_result.max_covered_level(entry.rollup.dataset.d),
                mup_result.stats.coverage_evaluations,
                mup_result.stats.pruned,
            ]
        )
    print(
        f"hierarchical MUP search, τ={result.threshold}, "
        f"{stack.depth + 1} levels (coarsest to finest):"
    )
    print(
        format_table(
            ["level", "cardinalities", "mups", "max covered", "evals", "pruned"],
            rows,
        )
    )
    if result.remedies:
        print()
        print(f"remedies by generalization (first {args.limit}):")
        for remedy in result.remedies[: args.limit]:
            print(f"  {remedy.describe(dataset.schema, stack)}")
        if len(result.remedies) > args.limit:
            print(f"  ... {len(result.remedies) - args.limit} more")
    return 0


def _cmd_bucketsweep(args: argparse.Namespace) -> int:
    from repro.analysis.hierarchy import bucketize_sweep, bucketized_dataset

    dataset, values = _load_csv_numeric(args.csv, args.column, args.attributes)
    counts = sorted(set(args.buckets))
    fine = bucketized_dataset(dataset, values, max(counts), name=args.column)
    with _engine_scope(args, fine, query_shape="hierarchy") as engine:
        oracle = CoverageOracle(fine, engine=engine)
        result = bucketize_sweep(
            dataset,
            values,
            counts,
            threshold=args.threshold,
            name=args.column,
            oracle=oracle,
        )
    if args.json:
        print(json.dumps(result.as_dict(), indent=2, sort_keys=True))
        return 0
    print(
        f"bucketization sweep over {args.column!r}, τ={result.threshold} "
        f"(one engine over {max(counts)} buckets, counts shared downward):"
    )
    rows = [
        [
            point.buckets,
            point.cardinality,
            len(point.result),
            point.result.max_covered_level(dataset.d + 1),
            point.result.stats.coverage_evaluations,
            point.result.stats.pruned,
        ]
        for point in result.points
    ]
    print(
        format_table(
            ["buckets", "cardinality", "mups", "max covered", "evals", "pruned"],
            rows,
        )
    )
    return 0


def _parse_rules(dataset: Dataset, texts: Sequence[str]) -> ValidationOracle:
    """Parse ``--rule "attr=code,attr=code"`` forbidden conjunctions.

    Each ``--rule`` names one semantically impossible combination of
    attribute values (integer codes); any collection suggestion matching
    every clause of a rule is ruled out.
    """
    rules = []
    for text in texts:
        clauses = []
        for part in text.split(","):
            if "=" not in part:
                raise ValidationError(
                    f"bad rule clause {part!r}; expected attribute=code"
                )
            name, _, value = part.partition("=")
            attribute = dataset.schema.index_of(name.strip())
            clauses.append((attribute, [int(value)]))
        rules.append(ValidationRule(clauses))
    return ValidationOracle(rules)


def _cmd_enhance(args: argparse.Namespace) -> int:
    dataset = _load_csv(args.csv, args.attributes)
    with _engine_scope(args, dataset) as engine:
        engine_backend = engine_name(engine)
        result = find_mups(
            dataset,
            threshold=args.threshold,
            algorithm=args.algorithm,
            max_level=args.max_level,
            engine=engine,
        )
    space = PatternSpace.for_dataset(dataset)
    targets = uncovered_at_level(result.mups, space, args.level)
    validation = _parse_rules(dataset, args.rule or [])
    # The target index only needs the mask representation family, so the
    # planned engine's canonical name (not the dataset-bound instance)
    # configures it.
    plan = greedy_cover(targets, space, validation, engine=engine_backend)
    print(enhancement_report(dataset, plan))
    return 0


def _cmd_demo(args: argparse.Namespace) -> int:
    dataset = load_compas()
    with _engine_scope(args, dataset) as engine:
        oracle = CoverageOracle(dataset, engine=engine)
        result = find_mups(
            dataset,
            threshold=args.threshold,
            algorithm="deepdiver",
            oracle=oracle,
        )
        print(dataset.describe())
        print()
        print(mup_report(dataset, result, limit=args.limit, oracle=oracle))
    return 0


def _add_serve_options(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--host", default=None, help="interface to bind (default 127.0.0.1)"
    )
    parser.add_argument(
        "--port",
        type=int,
        default=None,
        help="TCP port (default 8642; 0 picks an ephemeral port)",
    )
    parser.add_argument(
        "--batch-window-ms",
        type=float,
        default=None,
        help="coalescing window for point coverage queries: concurrent "
        "requests arriving within it merge into one batched engine pass "
        "and identical patterns share one query (default 2.0; 0 disables "
        "batching)",
    )
    parser.add_argument(
        "--max-batch",
        type=int,
        default=None,
        help="flush a coalescing batch early at this many distinct "
        "patterns (default 1024)",
    )
    parser.add_argument(
        "--registry-entries",
        type=int,
        default=None,
        help="warm dataset engines kept before LRU eviction (default 8)",
    )
    parser.add_argument(
        "--registry-bytes",
        type=int,
        default=None,
        help="total index bytes the registry keeps warm (default 256 MiB)",
    )
    parser.add_argument(
        "--memory-budget-bytes",
        type=int,
        default=None,
        help="admission control: reject datasets whose planned engine "
        "projects a larger resident index (default: the planner's probed "
        "budget)",
    )
    parser.add_argument(
        "--latency-budget-ms",
        type=float,
        default=None,
        help="admission control: reject datasets whose projected "
        "single-scan latency exceeds this (default 250)",
    )
    parser.add_argument(
        "--max-concurrent",
        type=int,
        default=None,
        help="heavy requests (identify/enhance/deliver/register) running "
        "at once (default 8)",
    )
    parser.add_argument(
        "--max-queue",
        type=int,
        default=None,
        help="heavy requests allowed to queue before 429 saturated "
        "rejections (default 64)",
    )
    parser.add_argument(
        "--result-cache",
        type=int,
        default=None,
        help="entries in the cross-request result cache (default 4096; "
        "0 disables)",
    )
    parser.add_argument(
        "--preload",
        action="append",
        metavar="CSV",
        default=None,
        help="register this integer-coded CSV — or an existing spill "
        "directory, attached warm instead of rebuilt — at startup "
        "(repeatable); the dataset key is printed before serving begins",
    )
    _add_engine_options(parser)


def _cmd_serve(args: argparse.Namespace) -> int:
    # Imported here so `repro-coverage identify` and friends never pay for
    # the serving stack.
    from repro.serve.config import ServeConfig
    from repro.serve.http import HttpServer
    from repro.serve.service import CoverageService

    config = ServeConfig.from_cli_args(args)

    async def _serve() -> None:
        service = CoverageService(config)
        server = HttpServer(service)
        try:
            for path in args.preload or []:
                if os.path.isdir(path):
                    # A finished spill directory: attach the existing shard
                    # files (manifest-validated) instead of rebuilding.
                    report = await service.register_spill(path)
                else:
                    dataset = _load_csv(path, None)
                    report = await service.register_dataset(
                        dataset.rows.tolist(), names=list(dataset.schema.names)
                    )
                print(
                    f"preloaded {path}: dataset={report['dataset']} "
                    f"backend={report['backend']} rows={report['rows']}",
                    flush=True,
                )
            host, port = await server.start(config.host, config.port)
            print(
                f"repro serve: listening on http://{host}:{port}", flush=True
            )
            await server.serve_forever()
        finally:
            await server.stop()
            service.close()

    try:
        asyncio.run(_serve())
    except KeyboardInterrupt:
        print("repro serve: shutting down", file=sys.stderr)
    return 0


def _cmd_worker(args: argparse.Namespace) -> int:
    # Imported here so the worker process stays lean and the other
    # subcommands never pay for the socket stack.
    from repro.core.engine.distributed import serve_worker

    try:
        serve_worker(args.host, args.port)
    except KeyboardInterrupt:
        print("repro worker: shutting down", file=sys.stderr)
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro-coverage",
        description="Assess and remedy coverage for a dataset (ICDE 2019).",
    )
    commands = parser.add_subparsers(dest="command", required=True)

    identify = commands.add_parser("identify", help="find maximal uncovered patterns")
    _add_common(identify)
    identify.add_argument("--limit", type=int, default=50, help="rows to print")
    identify.set_defaults(handler=_cmd_identify)

    label = commands.add_parser("label", help="print the coverage nutritional label")
    _add_common(label)
    label.set_defaults(handler=_cmd_label)

    enhance = commands.add_parser("enhance", help="plan additional data collection")
    _add_common(enhance)
    enhance.add_argument(
        "--level", type=int, required=True, help="target maximum covered level λ"
    )
    enhance.add_argument(
        "--rule",
        action="append",
        metavar="ATTR=CODE[,ATTR=CODE...]",
        help="forbidden value conjunction (repeatable); suggestions matching "
        "every clause are ruled out",
    )
    enhance.set_defaults(handler=_cmd_enhance)

    sweep = commands.add_parser(
        "sweep",
        help="amortized threshold sweep: MUP sets, Δτ diffs, and τ* "
        "breakpoints for an entire τ range in one traversal, with "
        "optional bootstrap stability",
    )
    sweep.add_argument("csv", help="path to an integer-coded CSV file")
    sweep.add_argument(
        "--attributes",
        nargs="+",
        help="attributes of interest (default: all columns)",
    )
    taus = sweep.add_mutually_exclusive_group(required=True)
    taus.add_argument(
        "--tau-range",
        metavar="LO:HI[:STEP]",
        help="inclusive τ range (also accepts a single τ or a comma list)",
    )
    taus.add_argument(
        "--thresholds",
        type=int,
        nargs="+",
        help="explicit τ settings",
    )
    sweep.add_argument(
        "--bootstrap",
        type=int,
        default=0,
        help="bootstrap replicates for MUP stability (default 0: skip)",
    )
    sweep.add_argument(
        "--seed", type=int, default=0, help="bootstrap base seed"
    )
    sweep.add_argument(
        "--max-level", type=int, default=None, help="level cap for the sweep"
    )
    sweep.add_argument(
        "--limit", type=int, default=25, help="breakpoint rows to print"
    )
    sweep.add_argument(
        "--json",
        action="store_true",
        help="emit the sensitivity report as JSON instead of tables",
    )
    _add_engine_options(sweep)
    sweep.set_defaults(handler=_cmd_sweep)

    hierarchy = commands.add_parser(
        "hierarchy",
        help="hierarchical MUP search over a stack of attribute "
        "generalization hierarchies: coarsest rollup first, drilling down "
        "only into uncovered regions, with per-MUP generalization remedies",
    )
    hierarchy.add_argument("csv", help="path to an integer-coded CSV file")
    hierarchy.add_argument(
        "--attributes",
        nargs="+",
        help="attributes of interest (default: all columns)",
    )
    hierarchy.add_argument(
        "--threshold", type=int, required=True, help="coverage threshold τ"
    )
    hierarchy.add_argument(
        "--hierarchy",
        required=True,
        metavar="SPEC.json",
        help="JSON hierarchy spec: {\"attr\": [level, ...]} where each "
        "level maps the attribute's base codes to group codes (a plain "
        "list, or {\"groups\": [...], \"labels\": [...]})",
    )
    hierarchy.add_argument(
        "--max-level", type=int, default=None, help="level cap per search"
    )
    hierarchy.add_argument(
        "--no-remedies",
        action="store_true",
        help="skip the most-specific-covered-generalization remedies",
    )
    hierarchy.add_argument(
        "--limit", type=int, default=25, help="remedy rows to print"
    )
    hierarchy.add_argument(
        "--json",
        action="store_true",
        help="emit the hierarchical result as JSON instead of tables",
    )
    _add_engine_options(hierarchy)
    hierarchy.set_defaults(handler=_cmd_hierarchy)

    bucketsweep = commands.add_parser(
        "bucketsweep",
        help="τ-coverage as a function of equal-width bucket count for a "
        "numeric column: one engine over the finest bucketization answers "
        "every coarser count through a shared count memo",
    )
    bucketsweep.add_argument(
        "csv", help="path to a CSV file with one numeric column"
    )
    bucketsweep.add_argument(
        "--attributes",
        nargs="+",
        help="categorical attributes of interest (default: all columns)",
    )
    bucketsweep.add_argument(
        "--column", required=True, help="name of the numeric column to sweep"
    )
    bucketsweep.add_argument(
        "--buckets",
        type=int,
        nargs="+",
        required=True,
        help="equal-width bucket counts (each >= 2, each dividing the "
        "largest so counts nest)",
    )
    bucketsweep.add_argument(
        "--threshold", type=int, required=True, help="coverage threshold τ"
    )
    bucketsweep.add_argument(
        "--json",
        action="store_true",
        help="emit the sweep as JSON instead of tables",
    )
    _add_engine_options(bucketsweep)
    bucketsweep.set_defaults(handler=_cmd_bucketsweep)

    demo = commands.add_parser("demo", help="COMPAS walk-through on bundled data")
    demo.add_argument("--threshold", type=int, default=10)
    demo.add_argument("--limit", type=int, default=20)
    _add_engine_options(demo)
    demo.set_defaults(handler=_cmd_demo)

    serve = commands.add_parser(
        "serve",
        help="run the persistent HTTP/JSON coverage service (identify / "
        "label / enhance / deliver endpoints with warm engines, request "
        "batching, and admission control)",
    )
    _add_serve_options(serve)
    serve.set_defaults(handler=_cmd_serve)

    worker = commands.add_parser(
        "worker",
        help="run a standalone shard worker: serves per-shard coverage "
        "kernels over the length-prefixed socket protocol for "
        "coordinators started with --workers-mode socket "
        "--worker-endpoints HOST:PORT (prints `listening on host:port` "
        "once bound)",
    )
    worker.add_argument(
        "--host",
        default="127.0.0.1",
        help="interface to bind (default 127.0.0.1; use 0.0.0.0 to accept "
        "coordinators from other hosts)",
    )
    worker.add_argument(
        "--port",
        type=int,
        default=0,
        help="port to bind (default 0: kernel-assigned, printed at startup)",
    )
    worker.set_defaults(handler=_cmd_worker)

    return parser


def main(argv: Optional[List[str]] = None) -> int:
    """Entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return args.handler(args)
    except (ReproError, OSError, ValueError) as error:
        # ValidationError derives from ReproError; OSError/ValueError cover
        # unreadable or malformed CSV input.
        print(f"error: {error}", file=sys.stderr)
        return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
