"""The serving facade: coverage-as-a-service request handlers.

:class:`CoverageService` owns the four serving pieces — warm-engine
registry, request batcher, admission controller, cross-request result
cache — and exposes one async method per endpoint.  The HTTP layer
(:mod:`repro.serve.http`) is a thin JSON shim over these methods, so tests
and the benchmark harness can drive the full serving semantics in-process
without sockets.

Request lifecycle:

* every read captures ``entry.snapshot`` once and answers entirely from it
  (snapshot isolation across concurrent deliveries);
* point coverage queries check the result cache, then ride the batcher;
* heavy requests (register / identify / enhance / deliver) pass admission
  control and run in the default executor so the event loop keeps
  accepting traffic.
"""

from __future__ import annotations

import asyncio
from typing import Any, Dict, List, Optional, Sequence

from repro.analysis.hierarchy import HierarchyStack, find_mups_hierarchical
from repro.analysis.sweep import (
    SweepResult,
    parse_tau_range,
    sweep_mups,
    threshold_sensitivity,
)
from repro.core.coverage import max_covered_level
from repro.core.enhancement.expansion import uncovered_at_level
from repro.core.enhancement.greedy import greedy_cover
from repro.core.mups.base import ALGORITHMS, find_mups
from repro.core.pattern import Pattern, X
from repro.core.pattern_graph import PatternSpace
from repro.data.dataset import Dataset
from repro.data.hierarchy import AttributeHierarchy
from repro.exceptions import ReproError, ServeError
from repro.serve.admission import AdmissionController
from repro.serve.batcher import CoverageBatcher
from repro.serve.cache import ResultCache
from repro.serve.config import ServeConfig
from repro.serve.registry import EngineRegistry, Snapshot


def _parse_pattern(value: Any, d: int) -> Pattern:
    """A wire pattern: compact string (``"1XX0"``) or value list.

    Lists use ``null`` (JSON) / ``None`` for the wildcard, supporting
    cardinalities past 10 where the compact form is ambiguous.
    """
    try:
        if isinstance(value, str):
            pattern = Pattern.from_string(value)
        elif isinstance(value, (list, tuple)):
            pattern = Pattern.of(*value)
        else:
            raise ServeError(
                "bad_pattern",
                f"pattern must be a compact string or a value list, "
                f"got {value!r}",
            )
    except ReproError as error:
        if isinstance(error, ServeError):
            raise
        raise ServeError("bad_pattern", str(error)) from error
    if len(pattern) != d:
        raise ServeError(
            "bad_pattern",
            f"pattern {value!r} has {len(pattern)} elements; dataset has {d}",
        )
    return pattern


def _pattern_values(pattern: Pattern) -> List[Optional[int]]:
    """JSON form of a pattern: value list with ``None`` wildcards."""
    return [None if v == X else int(v) for v in pattern]


class CoverageService:
    """Answers serving requests over a registry of warm engines."""

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.registry = EngineRegistry(
            config.engine,
            max_entries=config.registry_max_entries,
            max_bytes=config.registry_max_bytes,
        )
        self.batcher = CoverageBatcher(
            config.batch_window_seconds, config.max_batch
        )
        self.cache = ResultCache(config.result_cache_size)
        self.admission = AdmissionController(
            config.engine,
            memory_budget_bytes=config.memory_budget_bytes,
            latency_budget_seconds=config.latency_budget_ms / 1000.0,
            max_concurrent=config.max_concurrent,
            max_queue=config.max_queue,
        )

    # ------------------------------------------------------------------
    # dataset lifecycle
    # ------------------------------------------------------------------
    async def register_dataset(
        self,
        rows: Sequence[Sequence[int]],
        names: Optional[Sequence[str]] = None,
    ) -> Dict:
        """Build and warm an engine for the posted rows."""
        if not rows:
            raise ServeError("bad_request", "rows must be a non-empty list")
        loop = asyncio.get_running_loop()
        try:
            dataset = await loop.run_in_executor(
                None, lambda: Dataset.from_rows(rows, names=names)
            )
        except (ReproError, TypeError, ValueError) as error:
            raise ServeError("bad_request", f"bad rows payload: {error}")
        plan = await loop.run_in_executor(
            None, self.admission.check_budget, dataset
        )
        async with self.admission.heavy():
            entry, created = await loop.run_in_executor(
                None, self.registry.register, dataset
            )
        return {
            "dataset": entry.key,
            "fingerprint": entry.snapshot.fingerprint,
            "created": created,
            "rows": int(entry.snapshot.dataset.n),
            "d": int(entry.snapshot.dataset.d),
            "backend": type(entry.snapshot.oracle.engine).name,
            "index_nbytes": entry.nbytes,
            "plan": list(plan.rationale),
        }

    async def register_spill(self, spill_path: str) -> Dict:
        """Attach an existing spill directory as a warm dataset entry.

        The warm-start path behind ``repro serve --preload <dir>``: a
        restart re-attaches the spilled shard files (manifest- and
        fingerprint-validated) instead of re-serializing the index.
        """
        loop = asyncio.get_running_loop()
        async with self.admission.heavy():
            try:
                entry, created = await loop.run_in_executor(
                    None, self.registry.register_spill, spill_path
                )
            except (ReproError, OSError) as error:
                raise ServeError(
                    "bad_request", f"cannot attach spill dir: {error}"
                )
        return {
            "dataset": entry.key,
            "fingerprint": entry.snapshot.fingerprint,
            "created": created,
            "rows": int(entry.snapshot.dataset.n),
            "d": int(entry.snapshot.dataset.d),
            "backend": type(entry.snapshot.oracle.engine).name,
            "index_nbytes": entry.nbytes,
            "plan": ["attached existing spill directory (warm start)"],
        }

    def _snapshot(self, dataset_key: Any) -> Snapshot:
        if not isinstance(dataset_key, str):
            raise ServeError(
                "bad_request", f"dataset must be a fingerprint string"
            )
        return self.registry.get(dataset_key).snapshot

    # ------------------------------------------------------------------
    # point coverage: label
    # ------------------------------------------------------------------
    async def label(
        self,
        dataset_key: str,
        patterns: Sequence[Any],
        threshold: Optional[int] = None,
    ) -> Dict:
        """Coverage (and, with τ, covered flags) of the posted patterns.

        Each pattern resolves independently through the result cache and
        the batcher, so concurrent ``label`` calls across clients coalesce
        into shared engine passes.
        """
        snapshot = self._snapshot(dataset_key)
        if not isinstance(patterns, (list, tuple)) or not patterns:
            raise ServeError(
                "bad_request", "patterns must be a non-empty list"
            )
        parsed = [_parse_pattern(p, snapshot.dataset.d) for p in patterns]
        if len(parsed) == 1:  # point queries skip the gather machinery
            counts = [await self._cached_coverage(snapshot, parsed[0])]
        else:
            counts = await asyncio.gather(
                *(self._cached_coverage(snapshot, p) for p in parsed)
            )
        body: Dict[str, Any] = {
            "dataset": dataset_key,
            "fingerprint": snapshot.fingerprint,
            "patterns": [_pattern_values(p) for p in parsed],
            "coverage": [int(c) for c in counts],
            "total": int(snapshot.dataset.n),
        }
        if threshold is not None:
            threshold = int(threshold)
            body["threshold"] = threshold
            body["covered"] = [bool(c >= threshold) for c in counts]
        return body

    async def _cached_coverage(
        self, snapshot: Snapshot, pattern: Pattern
    ) -> int:
        key = ("cov", snapshot.fingerprint, pattern.values)
        cached = self.cache.get(key)
        if cached is not None:
            return cached
        count = await self.batcher.coverage(snapshot, pattern)
        self.cache.put(key, count)
        return count

    # ------------------------------------------------------------------
    # identify / enhance
    # ------------------------------------------------------------------
    def _check_identify_args(self, threshold: Any, algorithm: str) -> int:
        try:
            threshold = int(threshold)
        except (TypeError, ValueError):
            raise ServeError(
                "bad_request", f"threshold must be an integer, got {threshold!r}"
            )
        if threshold < 1:
            raise ServeError(
                "bad_request", f"threshold must be >= 1, got {threshold}"
            )
        if algorithm not in ALGORITHMS:
            raise ServeError(
                "bad_request",
                f"unknown algorithm {algorithm!r}; "
                f"available: {sorted(ALGORITHMS)}",
            )
        return threshold

    async def identify(
        self,
        dataset_key: str,
        threshold: Any,
        algorithm: str = "deepdiver",
    ) -> Dict:
        """MUPs of the dataset at τ, memoized per content fingerprint."""
        snapshot = self._snapshot(dataset_key)
        threshold = self._check_identify_args(threshold, algorithm)
        key = ("mups", snapshot.fingerprint, threshold, algorithm)
        mups = self.cache.get(key)
        if mups is None:
            entry = self.registry.get(dataset_key)
            index = entry.index
            if (
                index is not None
                and index.threshold == threshold
                and index.dataset is snapshot.dataset
            ):
                # The delivery index already maintains this τ's MUP set.
                mups = index.mups()
            else:
                loop = asyncio.get_running_loop()
                async with self.admission.heavy():
                    result = await loop.run_in_executor(
                        None,
                        lambda: find_mups(
                            snapshot.dataset,
                            threshold=threshold,
                            algorithm=algorithm,
                            oracle=snapshot.oracle,
                        ),
                    )
                mups = result.mups
            self.cache.put(key, mups)
        return {
            "dataset": dataset_key,
            "fingerprint": snapshot.fingerprint,
            "threshold": threshold,
            "algorithm": algorithm,
            "mups": [_pattern_values(p) for p in mups],
            "mup_strings": [str(p) for p in mups],
            "count": len(mups),
            "max_covered_level": max_covered_level(
                mups, d=snapshot.dataset.d
            ),
        }

    async def enhance(
        self,
        dataset_key: str,
        threshold: Any,
        level: Any,
        algorithm: str = "deepdiver",
    ) -> Dict:
        """Greedy acquisition plan reaching covered level λ."""
        snapshot = self._snapshot(dataset_key)
        threshold = self._check_identify_args(threshold, algorithm)
        try:
            level = int(level)
        except (TypeError, ValueError):
            raise ServeError(
                "bad_request", f"level must be an integer, got {level!r}"
            )
        if not 0 <= level <= snapshot.dataset.d:
            raise ServeError(
                "bad_request",
                f"level must be in [0, {snapshot.dataset.d}], got {level}",
            )
        key = ("enhance", snapshot.fingerprint, threshold, level, algorithm)
        cached = self.cache.get(key)
        if cached is not None:
            return dict(cached)
        identified = await self.identify(dataset_key, threshold, algorithm)
        mups = [
            Pattern.of(*values) for values in identified["mups"]
        ]
        loop = asyncio.get_running_loop()
        async with self.admission.heavy():
            body = await loop.run_in_executor(
                None, self._plan_enhancement, snapshot, mups, level
            )
        body.update(
            dataset=dataset_key,
            fingerprint=snapshot.fingerprint,
            threshold=threshold,
            level=level,
        )
        self.cache.put(key, dict(body))
        return body

    def _plan_enhancement(
        self, snapshot: Snapshot, mups: List[Pattern], level: int
    ) -> Dict:
        space = PatternSpace.for_dataset(snapshot.dataset)
        targets = uncovered_at_level(mups, space, level)
        plan = greedy_cover(targets, space, engine=self.config.engine)
        return {
            "targets": len(targets),
            "combinations": [list(map(int, combo)) for combo in plan.combinations],
            "unhittable": [_pattern_values(p) for p in plan.unhittable],
        }

    # ------------------------------------------------------------------
    # threshold sweeps
    # ------------------------------------------------------------------
    async def sweep(
        self,
        dataset_key: str,
        thresholds: Any,
        attributes: Optional[Sequence[Any]] = None,
        bootstrap: Any = 0,
        seed: Any = 0,
        max_level: Optional[Any] = None,
    ) -> Dict:
        """Amortized τ-range sweep with the sensitivity report.

        One traversal classifies every queried τ; results are memoized in
        the result cache under a key that embeds the snapshot's *content
        fingerprint* (plus the τ range, the attribute projection, and the
        bootstrap settings) — never the mutable dataset alias — so a
        delivery both makes stale sweeps unreachable and lets
        :meth:`deliver`'s ``invalidate(old_fingerprint)`` reclaim them.
        """
        snapshot = self._snapshot(dataset_key)
        taus = self._parse_thresholds(thresholds)
        attrs = self._parse_attributes(attributes, snapshot.dataset)
        try:
            bootstrap = int(bootstrap)
            seed = int(seed)
            max_level = None if max_level is None else int(max_level)
        except (TypeError, ValueError):
            raise ServeError(
                "bad_request",
                "bootstrap, seed, and max_level must be integers",
            )
        if bootstrap < 0:
            raise ServeError(
                "bad_request", f"bootstrap must be >= 0, got {bootstrap}"
            )
        key = (
            "sweep",
            snapshot.fingerprint,
            taus,
            attrs,
            max_level,
            bootstrap,
            seed,
        )
        cached = self.cache.get(key)
        if cached is not None:
            return dict(cached)
        loop = asyncio.get_running_loop()
        async with self.admission.heavy():
            body = await loop.run_in_executor(
                None,
                lambda: self._run_sweep(
                    snapshot, taus, attrs, max_level, bootstrap, seed
                ),
            )
        body.update(dataset=dataset_key, fingerprint=snapshot.fingerprint)
        self.cache.put(key, dict(body))
        return body

    def _parse_thresholds(self, thresholds: Any) -> tuple:
        try:
            if isinstance(thresholds, str):
                return parse_tau_range(thresholds)
            if isinstance(thresholds, int):
                return (self._check_identify_args(thresholds, "deepdiver"),)
            if isinstance(thresholds, (list, tuple)) and thresholds:
                return tuple(
                    sorted({int(t) for t in thresholds})
                )
        except ReproError as error:
            raise ServeError("bad_request", str(error)) from error
        except (TypeError, ValueError):
            pass
        raise ServeError(
            "bad_request",
            f"thresholds must be a non-empty integer list or a "
            f"'lo:hi[:step]' range string, got {thresholds!r}",
        )

    def _parse_attributes(
        self, attributes: Optional[Sequence[Any]], dataset: Dataset
    ) -> Optional[tuple]:
        if attributes is None:
            return None
        if not isinstance(attributes, (list, tuple)) or not attributes:
            raise ServeError(
                "bad_request", "attributes must be a non-empty list"
            )
        indices = []
        for item in attributes:
            if isinstance(item, str):
                try:
                    indices.append(dataset.schema.index_of(item))
                except ReproError as error:
                    raise ServeError("bad_request", str(error)) from error
            else:
                try:
                    index = int(item)
                except (TypeError, ValueError):
                    raise ServeError(
                        "bad_request",
                        f"attribute {item!r} is neither a name nor an index",
                    )
                if not 0 <= index < dataset.d:
                    raise ServeError(
                        "bad_request",
                        f"attribute index {index} out of range for "
                        f"d={dataset.d}",
                    )
                indices.append(index)
        return tuple(sorted(set(indices)))

    # ------------------------------------------------------------------
    # hierarchy: generalization-lattice MUPs
    # ------------------------------------------------------------------
    async def hierarchy(
        self,
        dataset_key: str,
        hierarchies: Any,
        threshold: Any,
        max_level: Optional[Any] = None,
        remedies: Any = True,
    ) -> Dict:
        """Hierarchical MUP search over a stack of generalization chains.

        Coarsest rollup first, drilling down only into uncovered regions;
        each finest-level MUP is reported with its most specific covered
        generalization.  Cached per content fingerprint like ``/sweep`` —
        the key embeds the chains, τ, and the level cap, so deliveries
        make stale results unreachable and reclaimable.
        """
        snapshot = self._snapshot(dataset_key)
        stack, canonical = self._parse_hierarchies(
            hierarchies, snapshot.dataset
        )
        threshold = self._check_identify_args(threshold, "deepdiver")
        try:
            max_level = None if max_level is None else int(max_level)
        except (TypeError, ValueError):
            raise ServeError("bad_request", "max_level must be an integer")
        remedies = bool(remedies)
        key = (
            "hierarchy",
            snapshot.fingerprint,
            canonical,
            threshold,
            max_level,
            remedies,
        )
        cached = self.cache.get(key)
        if cached is not None:
            return dict(cached)
        loop = asyncio.get_running_loop()
        async with self.admission.heavy():
            body = await loop.run_in_executor(
                None,
                lambda: self._run_hierarchy(
                    snapshot, stack, threshold, max_level, remedies
                ),
            )
        body.update(dataset=dataset_key, fingerprint=snapshot.fingerprint)
        self.cache.put(key, dict(body))
        return body

    def _parse_hierarchies(
        self, hierarchies: Any, dataset: Dataset
    ) -> tuple:
        """Wire chains → validated stack plus a hashable cache-key form.

        Format: ``{"attr": [level, ...]}`` where each level maps the
        attribute's base codes to group codes — a plain integer list or
        ``{"groups": [...], "labels": [...]}``.
        """
        if not isinstance(hierarchies, dict) or not hierarchies:
            raise ServeError(
                "bad_request",
                "hierarchies must be a non-empty object mapping attribute "
                "names to lists of levels",
            )
        chains = {}
        canonical = []
        try:
            for name, levels in sorted(hierarchies.items()):
                if not isinstance(levels, (list, tuple)):
                    raise ServeError(
                        "bad_request",
                        f"hierarchy chain for {name!r} must be a list",
                    )
                chain = []
                key_levels = []
                for level in levels:
                    if isinstance(level, dict):
                        groups = level.get("groups")
                        labels = level.get("labels")
                    else:
                        groups, labels = level, None
                    hierarchy = AttributeHierarchy.of(name, groups, labels)
                    chain.append(hierarchy)
                    key_levels.append(
                        (hierarchy.groups, hierarchy.group_labels)
                    )
                chains[name] = chain
                canonical.append((name, tuple(key_levels)))
            stack = HierarchyStack.of(dataset, chains)
        except ReproError as error:
            raise ServeError("bad_request", str(error)) from error
        except (TypeError, ValueError) as error:
            raise ServeError(
                "bad_request", f"malformed hierarchy spec: {error}"
            ) from error
        return stack, tuple(canonical)

    def _run_hierarchy(
        self,
        snapshot: Snapshot,
        stack: HierarchyStack,
        threshold: int,
        max_level: Optional[int],
        remedies: bool,
    ) -> Dict:
        try:
            result = find_mups_hierarchical(
                snapshot.dataset,
                stack,
                threshold=threshold,
                max_level=max_level,
                oracle=snapshot.oracle,
                remedies=remedies,
            )
        except ReproError as error:
            raise ServeError("bad_request", str(error)) from error
        body = result.as_dict()
        body["depth"] = stack.depth
        body["max_level"] = max_level
        return body

    def _run_sweep(
        self,
        snapshot: Snapshot,
        thresholds: tuple,
        attributes: Optional[tuple],
        max_level: Optional[int],
        bootstrap: int,
        seed: int,
    ) -> Dict:
        try:
            result: SweepResult = sweep_mups(
                snapshot.dataset,
                thresholds,
                attributes=attributes,
                max_level=max_level,
                oracle=snapshot.oracle,
            )
            report = threshold_sensitivity(
                snapshot.dataset,
                thresholds,
                attributes=attributes,
                max_level=max_level,
                bootstrap=bootstrap,
                seed=seed,
                sweep=result,
            )
        except ReproError as error:
            raise ServeError("bad_request", str(error)) from error
        body = report.as_dict()
        body["mups"] = {
            str(tau): [str(p) for p in result.mups_at(tau).mups]
            for tau in result.thresholds
        }
        body["attributes"] = (
            None if attributes is None else list(attributes)
        )
        body["max_level"] = max_level
        body["evaluations"] = int(result.stats.coverage_evaluations)
        return body

    # ------------------------------------------------------------------
    # deliveries
    # ------------------------------------------------------------------
    async def deliver(
        self,
        dataset_key: str,
        rows: Sequence[Sequence[int]],
        threshold: Optional[int] = None,
        algorithm: str = "deepdiver",
    ) -> Dict:
        """Append rows under snapshot semantics; returns the delivery report."""
        entry = self.registry.get(dataset_key)
        if not isinstance(rows, (list, tuple)) or not rows:
            raise ServeError("bad_request", "rows must be a non-empty list")
        old_fingerprint = entry.snapshot.fingerprint
        loop = asyncio.get_running_loop()
        async with self.admission.heavy():
            report = await loop.run_in_executor(
                None,
                lambda: self.registry.deliver(
                    entry, rows, threshold, algorithm
                ),
            )
        # Keys embed the fingerprint, so stale results are unreachable
        # already; invalidating reclaims their space eagerly.
        self.cache.invalidate(old_fingerprint)
        return report

    # ------------------------------------------------------------------
    # introspection
    # ------------------------------------------------------------------
    def stats(self) -> Dict:
        return {
            "config": self.config.to_dict(),
            "registry": self.registry.info(),
            "batcher": self.batcher.info(),
            "result_cache": self.cache.info(),
            "admission": self.admission.info(),
        }

    def close(self) -> None:
        self.registry.close()
