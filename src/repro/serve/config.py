"""Declarative serving configuration: every ``repro serve`` knob in one object.

Mirrors the role :class:`~repro.core.engine.config.EngineConfig` plays for
the engine stack: a frozen, validated dataclass the CLI, tests, and the
benchmark harness all construct the server from, so cross-field rules live
in one place.  The engine the registry warms per dataset is itself an
``EngineConfig`` (``"auto"`` by default, so the workload-aware planner
picks the backend per registered dataset).
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Any, Optional

from repro.core.engine.config import AUTO, EngineConfig
from repro.exceptions import ServeError

#: Default coalescing window: long enough to collect a concurrent burst,
#: short enough to be invisible next to network latency.
DEFAULT_BATCH_WINDOW_MS = 2.0

#: Default byte budget for warm engines held by the registry.
DEFAULT_REGISTRY_BYTES = 256 << 20


@dataclass(frozen=True)
class ServeConfig:
    """A complete description of one serving process.

    Attributes:
        host: interface the HTTP listener binds.
        port: TCP port (0 lets the OS pick; tests and benchmarks use it).
        batch_window_ms: coalescing window for point coverage queries —
            requests arriving within it merge into one ``coverage_many``
            call; ``0`` disables batching and deduplication entirely (every
            request runs its own engine query).
        max_batch: flush a batch early once this many distinct patterns
            are pending (bounds worst-case batch latency and memory).
        registry_max_entries: warm engines kept in the registry before LRU
            eviction.
        registry_max_bytes: total index bytes the registry may keep warm.
        memory_budget_bytes: admission-control memory budget — requests
            whose planned engine projects a larger resident index are
            rejected with a structured error.  ``None`` defers to the
            planner's probed default budget.
        latency_budget_ms: admission-control latency budget — requests
            whose planned single-scan projection exceeds it are rejected.
        max_concurrent: heavy requests (identify / enhance / deliver /
            dataset registration) running at once; further ones queue.
        max_queue: heavy requests allowed to wait; beyond it requests are
            rejected as saturated instead of queueing unboundedly.
        result_cache_size: entries in the cross-request result cache
            (``0`` disables it).
        engine: the :class:`EngineConfig` the registry builds warm engines
            from (default ``"auto"``).
    """

    host: str = "127.0.0.1"
    port: int = 8642
    batch_window_ms: float = DEFAULT_BATCH_WINDOW_MS
    max_batch: int = 1024
    registry_max_entries: int = 8
    registry_max_bytes: int = DEFAULT_REGISTRY_BYTES
    memory_budget_bytes: Optional[int] = None
    latency_budget_ms: float = 250.0
    max_concurrent: int = 8
    max_queue: int = 64
    result_cache_size: int = 4096
    engine: EngineConfig = field(
        default_factory=lambda: EngineConfig(backend=AUTO)
    )

    def __post_init__(self) -> None:
        if self.batch_window_ms < 0:
            raise ServeError(
                "bad_config",
                f"batch_window_ms must be >= 0, got {self.batch_window_ms}",
            )
        if self.max_batch < 1:
            raise ServeError(
                "bad_config", f"max_batch must be >= 1, got {self.max_batch}"
            )
        if self.registry_max_entries < 1:
            raise ServeError(
                "bad_config",
                f"registry_max_entries must be >= 1, "
                f"got {self.registry_max_entries}",
            )
        if self.registry_max_bytes < 1:
            raise ServeError(
                "bad_config",
                f"registry_max_bytes must be >= 1, got {self.registry_max_bytes}",
            )
        if self.memory_budget_bytes is not None and self.memory_budget_bytes < 1:
            raise ServeError(
                "bad_config",
                f"memory_budget_bytes must be >= 1, "
                f"got {self.memory_budget_bytes}",
            )
        if self.latency_budget_ms <= 0:
            raise ServeError(
                "bad_config",
                f"latency_budget_ms must be > 0, got {self.latency_budget_ms}",
            )
        if self.max_concurrent < 1:
            raise ServeError(
                "bad_config",
                f"max_concurrent must be >= 1, got {self.max_concurrent}",
            )
        if self.max_queue < 0:
            raise ServeError(
                "bad_config", f"max_queue must be >= 0, got {self.max_queue}"
            )
        if self.result_cache_size < 0:
            raise ServeError(
                "bad_config",
                f"result_cache_size must be >= 0, got {self.result_cache_size}",
            )
        if not isinstance(self.engine, EngineConfig):
            raise ServeError(
                "bad_config",
                f"engine must be an EngineConfig, got {self.engine!r}",
            )

    @property
    def batch_window_seconds(self) -> float:
        return self.batch_window_ms / 1000.0

    @classmethod
    def from_cli_args(cls, args: Any) -> "ServeConfig":
        """Lift an ``argparse`` namespace (engine flags included) into a config."""
        defaults = cls()
        return cls(
            host=getattr(args, "host", None) or defaults.host,
            port=_or_default(args, "port", defaults.port),
            batch_window_ms=_or_default(
                args, "batch_window_ms", defaults.batch_window_ms
            ),
            max_batch=_or_default(args, "max_batch", defaults.max_batch),
            registry_max_entries=_or_default(
                args, "registry_entries", defaults.registry_max_entries
            ),
            registry_max_bytes=_or_default(
                args, "registry_bytes", defaults.registry_max_bytes
            ),
            memory_budget_bytes=getattr(args, "memory_budget_bytes", None),
            latency_budget_ms=_or_default(
                args, "latency_budget_ms", defaults.latency_budget_ms
            ),
            max_concurrent=_or_default(
                args, "max_concurrent", defaults.max_concurrent
            ),
            max_queue=_or_default(args, "max_queue", defaults.max_queue),
            result_cache_size=_or_default(
                args, "result_cache", defaults.result_cache_size
            ),
            engine=EngineConfig.from_cli_args(args),
        )

    def to_dict(self) -> dict:
        """JSON-serializable form (surfaced by the ``/stats`` endpoint)."""
        payload = dataclasses.asdict(self)
        payload["engine"] = self.engine.to_dict()
        return payload


def _or_default(args: Any, name: str, default):
    value = getattr(args, name, None)
    return default if value is None else value
