"""Warm-engine registry: one entry per served dataset, LRU-bounded.

The registry turns the one-shot engine stack into serving state: each
registered dataset gets a warm :class:`~repro.core.coverage.CoverageOracle`
(planned through the configured :class:`EngineConfig`, ``"auto"`` by
default) kept alive across requests, keyed by the dataset's
``content_fingerprint()``.  Entries are evicted least-recently-used under
both an entry cap and a total index-byte budget, with per-entry byte
accounting from ``engine.index_nbytes``.

**Snapshot semantics.**  Readers never touch an entry's mutable fields:
they capture ``entry.snapshot`` once — an immutable (dataset, oracle,
fingerprint) triple — and answer the whole request from it.  A delivery
routes through :class:`~repro.core.incremental.IncrementalMupIndex`
(exception-safe rebuild: the new oracle is fully built before any state
swaps) and then atomically replaces the snapshot reference, so a
concurrent reader sees either the old index or the new one, never a
half-applied state.  Admission control only admits datasets whose planned
engine is fully resident, so retiring an old engine eagerly (its
``close()`` is a no-op for in-memory backends) cannot pull spill files out
from under a reader.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from repro.core.coverage import CoverageOracle
from repro.core.engine.config import EngineConfig
from repro.core.incremental import IncrementalMupIndex
from repro.data.dataset import Dataset
from repro.exceptions import ServeError


class Snapshot:
    """An immutable view of one served dataset at one point in time."""

    __slots__ = ("dataset", "oracle", "fingerprint")

    def __init__(
        self, dataset: Dataset, oracle: CoverageOracle, fingerprint: str
    ) -> None:
        self.dataset = dataset
        self.oracle = oracle
        self.fingerprint = fingerprint


class DatasetEntry:
    """One registered dataset: its current snapshot plus delivery state.

    ``key`` is the *registration-time* fingerprint — the stable handle
    clients keep across deliveries; ``snapshot.fingerprint`` tracks the
    current content.  ``lock`` serializes writers (deliveries and index
    creation); readers are lock-free via the snapshot reference.
    """

    __slots__ = ("key", "snapshot", "index", "lock", "nbytes")

    def __init__(self, key: str, snapshot: Snapshot, nbytes: int) -> None:
        self.key = key
        self.snapshot = snapshot
        self.index: Optional[IncrementalMupIndex] = None
        self.lock = threading.Lock()
        self.nbytes = nbytes

    def close(self) -> None:
        self.snapshot.oracle.engine.close()


class EngineRegistry:
    """Thread-safe LRU registry of warm dataset entries."""

    def __init__(
        self,
        engine: EngineConfig,
        max_entries: int,
        max_bytes: int,
    ) -> None:
        self._engine = engine
        self._max_entries = int(max_entries)
        self._max_bytes = int(max_bytes)
        self._entries: "OrderedDict[str, DatasetEntry]" = OrderedDict()
        # current content fingerprint -> registration key, so clients may
        # address an entry by either handle after deliveries.
        self._aliases: Dict[str, str] = {}
        self._lock = threading.Lock()
        self._total_nbytes = 0
        self._registers = 0
        self._evictions = 0
        self._lookup_hits = 0
        self._lookup_misses = 0

    # ------------------------------------------------------------------
    # lookup / registration
    # ------------------------------------------------------------------
    def get(self, key: str) -> DatasetEntry:
        """The entry registered under ``key`` (or a current fingerprint).

        Raises:
            ServeError: ``unknown_dataset`` (HTTP 404) when no warm entry
                matches — including one evicted since registration.
        """
        with self._lock:
            entry = self._entries.get(self._aliases.get(key, key))
            if entry is None:
                self._lookup_misses += 1
                raise ServeError(
                    "unknown_dataset",
                    f"no registered dataset {key!r} (evicted or never "
                    f"registered); POST /datasets to (re)register it",
                    status=404,
                )
            self._lookup_hits += 1
            self._entries.move_to_end(entry.key)
            return entry

    def register(self, dataset: Dataset) -> Tuple[DatasetEntry, bool]:
        """Warm an engine for ``dataset``; returns ``(entry, created)``.

        Re-registering identical content returns the existing warm entry
        untouched.  The build runs outside the registry lock so other
        requests keep flowing; on a concurrent duplicate registration the
        loser's engine is closed and the winner kept.
        """
        key = dataset.content_fingerprint()
        with self._lock:
            existing = self._entries.get(self._aliases.get(key, key))
            if existing is not None:
                self._entries.move_to_end(existing.key)
                return existing, False
        oracle = CoverageOracle(dataset, engine=self._engine)
        nbytes = int(oracle.engine.index_nbytes)
        entry = DatasetEntry(key, Snapshot(dataset, oracle, key), nbytes)
        with self._lock:
            winner = self._entries.get(self._aliases.get(key, key))
            if winner is not None:
                self._entries.move_to_end(winner.key)
                loser = entry
            else:
                self._entries[key] = entry
                self._total_nbytes += entry.nbytes
                self._registers += 1
                self._evict_over_budget()
                return entry, True
        loser.close()
        return winner, False

    def register_spill(self, spill_path: str) -> Tuple[DatasetEntry, bool]:
        """Warm an entry by attaching a finished spill directory.

        The restart path: the directory's serialized dataset payload
        reconstructs the logical dataset
        (:func:`~repro.core.engine.load_spill_dataset`), the existing shard
        files are attached in place — fingerprint-validated, never
        re-serialized — and the entry registers like any other.  The
        attached engine does not own the directory, so eviction or
        shutdown releases the mmaps without deleting the files.
        """
        from repro.core.engine import load_spill_dataset
        from repro.core.engine.sharded import (
            DEFAULT_WORKERS_MODE,
            ShardedEngine,
        )

        dataset = load_spill_dataset(spill_path)
        key = dataset.content_fingerprint()
        with self._lock:
            existing = self._entries.get(self._aliases.get(key, key))
            if existing is not None:
                self._entries.move_to_end(existing.key)
                return existing, False
        attach_options = dict(
            workers=self._engine.workers,
            workers_mode=self._engine.workers_mode or DEFAULT_WORKERS_MODE,
            max_resident_bytes=self._engine.max_resident_bytes,
            worker_endpoints=self._engine.worker_endpoints,
            delta_spill=bool(self._engine.delta_spill),
            kernel_tier=self._engine.kernel_tier,
        )
        if self._engine.mask_cache_size is not None:
            attach_options["mask_cache_size"] = self._engine.mask_cache_size
        engine = ShardedEngine.attach(dataset, spill_path, **attach_options)
        try:
            oracle = CoverageOracle(dataset, engine=engine)
            nbytes = int(engine.index_nbytes)
            entry = DatasetEntry(key, Snapshot(dataset, oracle, key), nbytes)
        except BaseException:
            engine.close()
            raise
        with self._lock:
            winner = self._entries.get(self._aliases.get(key, key))
            if winner is not None:
                self._entries.move_to_end(winner.key)
                loser = entry
            else:
                self._entries[key] = entry
                self._total_nbytes += entry.nbytes
                self._registers += 1
                self._evict_over_budget()
                return entry, True
        loser.close()
        return winner, False

    def _evict_over_budget(self) -> List[DatasetEntry]:
        """Pop LRU entries beyond the caps (registry lock must be held).

        The newest entry always survives, so one oversized dataset degrades
        the registry to a single warm engine instead of thrashing.  Evicted
        engines close inline: admission control only admits fully resident
        plans, whose ``close()`` is instant.
        """
        evicted: List[DatasetEntry] = []
        while len(self._entries) > 1 and (
            len(self._entries) > self._max_entries
            or self._total_nbytes > self._max_bytes
        ):
            _, entry = self._entries.popitem(last=False)
            self._total_nbytes -= entry.nbytes
            self._aliases = {
                alias: key
                for alias, key in self._aliases.items()
                if key != entry.key
            }
            self._evictions += 1
            entry.close()
            evicted.append(entry)
        return evicted

    # ------------------------------------------------------------------
    # deliveries (writers)
    # ------------------------------------------------------------------
    def ensure_index(
        self, entry: DatasetEntry, threshold: int, algorithm: str
    ) -> IncrementalMupIndex:
        """The entry's incremental MUP index, created on first need.

        Adopts the entry's warm oracle (no second index build).  One index
        per entry: a request for a different threshold rebuilds it — the
        serving sweet spot is many deliveries against one τ, and the
        result cache absorbs repeated identify calls for others.
        """
        with entry.lock:
            index = entry.index
            if index is not None and index.threshold == int(threshold):
                return index
            snapshot = entry.snapshot
            adopted = (
                snapshot.oracle
                if index is None and snapshot.oracle.dataset is snapshot.dataset
                else None
            )
            index = IncrementalMupIndex(
                snapshot.dataset,
                threshold=int(threshold),
                algorithm=algorithm,
                engine=self._engine,
                oracle=adopted,
            )
            entry.index = index
            return index

    def deliver(
        self,
        entry: DatasetEntry,
        rows: Iterable[Sequence[int]],
        threshold: Optional[int],
        algorithm: str,
    ) -> Dict:
        """Append ``rows`` to the entry under snapshot semantics.

        Routes through :class:`IncrementalMupIndex` — the index's
        exception-safe rebuild builds the new engine *before* any state
        changes — then atomically swaps the entry's snapshot, so readers
        mid-request keep answering from the old index and new requests see
        the new one.  Returns the delivery report (resolved MUPs, new
        fingerprint).
        """
        rows = [list(int(v) for v in row) for row in rows]
        index = self.ensure_index(
            entry, 1 if threshold is None else int(threshold), algorithm
        )
        with entry.lock:
            if entry.index is not index:
                raise ServeError(
                    "conflict",
                    "the entry's index changed while the delivery waited; "
                    "retry",
                    status=409,
                )
            old = entry.snapshot
            resolved = index.add_rows(rows)  # exception-safe: old state kept
            new_fingerprint = index.dataset.content_fingerprint()
            entry.snapshot = Snapshot(
                index.dataset, index.oracle, new_fingerprint
            )
            new_nbytes = int(index.oracle.engine.index_nbytes)
        with self._lock:
            self._total_nbytes += new_nbytes - entry.nbytes
            entry.nbytes = new_nbytes
            self._aliases.pop(old.fingerprint, None)
            self._aliases[new_fingerprint] = entry.key
            self._evict_over_budget()
        return {
            "dataset": entry.key,
            "fingerprint": new_fingerprint,
            "rows_delivered": len(rows),
            "rows_total": int(index.dataset.n),
            "resolved": [str(p) for p in resolved],
            "mups": len(index.mups()),
            "threshold": index.threshold,
        }

    # ------------------------------------------------------------------
    # lifecycle / introspection
    # ------------------------------------------------------------------
    def close(self) -> None:
        with self._lock:
            entries = list(self._entries.values())
            self._entries.clear()
            self._aliases.clear()
            self._total_nbytes = 0
        for entry in entries:
            entry.close()

    def info(self) -> Dict:
        with self._lock:
            return {
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "nbytes": self._total_nbytes,
                "max_bytes": self._max_bytes,
                "registers": self._registers,
                "evictions": self._evictions,
                "lookup_hits": self._lookup_hits,
                "lookup_misses": self._lookup_misses,
                "datasets": [
                    {
                        "dataset": entry.key,
                        "fingerprint": entry.snapshot.fingerprint,
                        "rows": int(entry.snapshot.dataset.n),
                        "nbytes": entry.nbytes,
                        "backend": type(entry.snapshot.oracle.engine).name,
                    }
                    for entry in self._entries.values()
                ],
            }
