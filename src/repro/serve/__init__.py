"""Coverage-as-a-service: a persistent async serving layer.

The one-shot CLI pays the full index-build cost on every invocation; this
package keeps engines warm and serves the paper's three operations —
``identify`` (MUPs), ``label`` (coverage of posted patterns) and
``enhance`` (acquisition plans) — over HTTP/JSON, plus ``deliver`` for
incremental row deliveries with snapshot isolation.

Pieces (each its own module):

* :mod:`~repro.serve.registry` — warm-engine LRU registry + snapshots
* :mod:`~repro.serve.batcher` — request coalescing onto ``coverage_many``
* :mod:`~repro.serve.admission` — planner-driven budget + concurrency gates
* :mod:`~repro.serve.cache` — cross-request result cache
* :mod:`~repro.serve.service` — the facade the HTTP layer dispatches into
* :mod:`~repro.serve.http` — stdlib-only HTTP/1.1 JSON transport
"""

from repro.serve.admission import AdmissionController
from repro.serve.batcher import CoverageBatcher
from repro.serve.cache import ResultCache
from repro.serve.config import ServeConfig
from repro.serve.http import BackgroundServer, HttpServer, run_server
from repro.serve.registry import DatasetEntry, EngineRegistry, Snapshot
from repro.serve.service import CoverageService

__all__ = [
    "AdmissionController",
    "BackgroundServer",
    "CoverageBatcher",
    "CoverageService",
    "DatasetEntry",
    "EngineRegistry",
    "HttpServer",
    "ResultCache",
    "ServeConfig",
    "Snapshot",
    "run_server",
]
