"""Admission control driven by the planner's cost model.

Two gates stand in front of the engines:

* **Budget admission** — before a dataset is registered (or a heavy query
  planned), :func:`~repro.core.engine.planner.plan_engine` projects the
  resident index bytes and single-scan latency of the engine it would
  build.  A projection over the configured memory budget (the plan would
  have to spill) or over the latency budget is rejected up front with a
  structured error carrying the projections — the client learns *why* and
  by how much, instead of timing out against a thrashing server.
* **Concurrency admission** — heavy requests (identify / enhance /
  deliver / registration) pass through a bounded semaphore: up to
  ``max_concurrent`` run, up to ``max_queue`` wait, and beyond that the
  request is rejected as ``saturated`` rather than queueing unboundedly.
  Point coverage lookups skip this gate — they ride the batcher.
"""

from __future__ import annotations

import asyncio
import contextlib
import threading
from typing import Dict, Optional

from repro.core.engine.config import EngineConfig
from repro.core.engine.planner import (
    EnginePlan,
    JIT_SCAN_SPEEDUP,
    PACKED_SCAN_BYTES_PER_SECOND,
    plan_engine,
)
from repro.data.dataset import Dataset
from repro.exceptions import AdmissionError


def _projected_resident_bytes(plan: EnginePlan) -> int:
    """Resident index bytes the planned backend would hold."""
    stats = plan.stats
    backend = plan.config.backend
    if backend == "dense":
        return stats.projected_dense_bytes
    if backend == "compressed":
        return stats.projected_compressed_bytes
    if backend == "sharded" and plan.config.spill_dir is not None:
        # Out-of-core keeps only max_resident_bytes in RAM — but a serving
        # process must never stream queries off disk, so the *full* packed
        # footprint is what admission compares against the budget.
        return stats.projected_packed_bytes
    return stats.projected_packed_bytes


def _projected_scan_seconds(plan: EnginePlan) -> float:
    """One full-index scan under the calibrated throughput model."""
    throughput = PACKED_SCAN_BYTES_PER_SECOND * (
        JIT_SCAN_SPEEDUP if plan.stats.kernel_tier == "jit" else 1.0
    )
    return _projected_resident_bytes(plan) / throughput


class AdmissionController:
    """Decides, per request, between admit, queue, and structured reject."""

    def __init__(
        self,
        engine: EngineConfig,
        memory_budget_bytes: Optional[int],
        latency_budget_seconds: float,
        max_concurrent: int,
        max_queue: int,
    ) -> None:
        self._engine = engine
        self._memory_budget = memory_budget_bytes
        self._latency_budget = float(latency_budget_seconds)
        self._max_concurrent = int(max_concurrent)
        self._max_queue = int(max_queue)
        # Created lazily inside the running loop: asyncio primitives bind
        # to the loop they are first awaited on.
        self._semaphore: Optional[asyncio.Semaphore] = None
        self._counter_lock = threading.Lock()
        self._waiting = 0
        self._active = 0
        self._admitted = 0
        self._queued = 0
        self._rejected_budget = 0
        self._rejected_saturated = 0

    # ------------------------------------------------------------------
    # budget admission
    # ------------------------------------------------------------------
    def check_budget(
        self, dataset: Dataset, query_shape: str = "point"
    ) -> EnginePlan:
        """Plan ``dataset`` and reject projections over budget.

        Returns the plan (the caller reuses it for rationale reporting) or
        raises :class:`AdmissionError` with the projections in ``detail``.
        """
        plan = plan_engine(dataset, self._engine, query_shape=query_shape)
        budget = self._memory_budget
        if budget is None:
            budget = plan.stats.memory_budget_bytes
        projected = _projected_resident_bytes(plan)
        if projected > budget:
            with self._counter_lock:
                self._rejected_budget += 1
            raise AdmissionError(
                "over_budget",
                f"planned engine projects {projected} resident index bytes, "
                f"over the {budget}-byte serving budget",
                status=413,
                detail={
                    "projected_bytes": int(projected),
                    "budget_bytes": int(budget),
                    "backend": plan.config.backend,
                },
            )
        scan_seconds = _projected_scan_seconds(plan)
        if scan_seconds > self._latency_budget:
            with self._counter_lock:
                self._rejected_budget += 1
            raise AdmissionError(
                "over_latency",
                f"planned engine projects {scan_seconds * 1000:.1f} ms per "
                f"index scan, over the {self._latency_budget * 1000:.1f} ms "
                f"serving latency budget",
                status=413,
                detail={
                    "projected_scan_ms": scan_seconds * 1000,
                    "latency_budget_ms": self._latency_budget * 1000,
                    "backend": plan.config.backend,
                },
            )
        return plan

    # ------------------------------------------------------------------
    # concurrency admission
    # ------------------------------------------------------------------
    @contextlib.asynccontextmanager
    async def heavy(self):
        """Bounded slot for a heavy request: admit, queue, or reject."""
        if self._semaphore is None:
            self._semaphore = asyncio.Semaphore(self._max_concurrent)
        semaphore = self._semaphore
        queued = semaphore.locked()
        if queued:
            with self._counter_lock:
                if self._waiting >= self._max_queue:
                    self._rejected_saturated += 1
                    raise AdmissionError(
                        "saturated",
                        f"{self._max_concurrent} heavy requests running and "
                        f"{self._waiting} queued (max {self._max_queue}); "
                        f"retry later",
                        status=429,
                        detail={
                            "max_concurrent": self._max_concurrent,
                            "max_queue": self._max_queue,
                        },
                    )
                self._waiting += 1
                self._queued += 1
        try:
            await semaphore.acquire()
        finally:
            if queued:
                with self._counter_lock:
                    self._waiting -= 1
        with self._counter_lock:
            self._admitted += 1
            self._active += 1
        try:
            yield
        finally:
            with self._counter_lock:
                self._active -= 1
            semaphore.release()

    def info(self) -> Dict[str, int]:
        with self._counter_lock:
            return {
                "max_concurrent": self._max_concurrent,
                "max_queue": self._max_queue,
                "active": self._active,
                "waiting": self._waiting,
                "admitted": self._admitted,
                "queued": self._queued,
                "rejected_over_budget": self._rejected_budget,
                "rejected_saturated": self._rejected_saturated,
                "memory_budget_bytes": self._memory_budget,
                "latency_budget_ms": self._latency_budget * 1000,
            }
