"""Cross-request result cache for the serving layer.

Layered *above* the per-engine hot-mask LRU: the engine cache saves the
index scan for a repeated pattern, this cache saves the whole request —
coverage counts, MUP sets, enhancement plans — across clients.  Keys embed
the snapshot's content fingerprint, so a delivery naturally orphans every
stale entry (the new snapshot has a new fingerprint); :meth:`invalidate`
reclaims the orphans' space eagerly instead of waiting for LRU churn.

Thread-safe: requests resolve cache hits on the event loop while heavy
work (and the benchmark harness) probes it from worker threads.
"""

from __future__ import annotations

import threading
from collections import OrderedDict
from typing import Any, Dict, Hashable, Optional, Tuple

#: Cache keys are ``(kind, fingerprint, *request)`` tuples.
Key = Tuple[Hashable, ...]

_MISSING = object()


class ResultCache:
    """A bounded, thread-safe LRU mapping request keys to responses."""

    def __init__(self, max_entries: int) -> None:
        self._max_entries = max(0, int(max_entries))
        self._entries: "OrderedDict[Key, Any]" = OrderedDict()
        self._lock = threading.Lock()
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def enabled(self) -> bool:
        return self._max_entries > 0

    def get(self, key: Key, default: Any = None) -> Any:
        if not self._max_entries:
            return default
        with self._lock:
            value = self._entries.get(key, _MISSING)
            if value is _MISSING:
                self._misses += 1
                return default
            self._hits += 1
            self._entries.move_to_end(key)
            return value

    def put(self, key: Key, value: Any) -> None:
        if not self._max_entries:
            return
        with self._lock:
            self._entries[key] = value
            self._entries.move_to_end(key)
            while len(self._entries) > self._max_entries:
                self._entries.popitem(last=False)
                self._evictions += 1

    def invalidate(self, fingerprint: str) -> int:
        """Drop every entry keyed under ``fingerprint``; returns the count."""
        with self._lock:
            stale = [k for k in self._entries if k[1] == fingerprint]
            for key in stale:
                del self._entries[key]
            return len(stale)

    def clear(self) -> None:
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def info(self) -> Dict[str, float]:
        with self._lock:
            total = self._hits + self._misses
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "entries": len(self._entries),
                "max_entries": self._max_entries,
                "hit_rate": (self._hits / total) if total else 0.0,
            }
