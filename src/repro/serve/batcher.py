"""Request coalescing: many concurrent point queries, one engine pass.

The engines' batched frontier APIs (``coverage_many`` / ``count_many``)
were built for algorithm-side frontiers; the batcher points them at
*traffic*.  Point coverage requests that arrive within one coalescing
window against the same snapshot are merged into a single
``coverage_many`` call, and identical in-flight patterns are deduplicated
onto one shared future — N clients asking for the same pattern cost one
engine query.

Single-loop design: all bookkeeping runs on the event loop (no locks);
only the engine call itself runs in the default thread-pool executor so
the loop keeps accepting requests while an index scan is in flight.  A
window of ``0`` disables coalescing entirely — each request runs its own
engine query — which is exactly the "unbatched" baseline the serving
benchmark compares against.
"""

from __future__ import annotations

import asyncio
from typing import Dict, List, Tuple

from repro.core.pattern import Pattern
from repro.serve.registry import Snapshot


class _Bucket:
    """Pending queries for one snapshot generation.

    Each distinct pattern maps to its ``Pattern`` plus one future *per
    waiter*.  Per-waiter futures (rather than one shared future guarded by
    ``asyncio.shield``) keep the hot path cheap — shield costs an extra
    future plus two callbacks per request, ~30% of the batched loop time —
    and make cancellation local: a waiter whose request dies just has its
    future skipped at fan-out, without poisoning the other waiters.
    """

    __slots__ = ("snapshot", "pending")

    def __init__(self, snapshot: Snapshot) -> None:
        self.snapshot = snapshot
        self.pending: Dict[
            Tuple[int, ...], Tuple[Pattern, List["asyncio.Future[int]"]]
        ] = {}


class CoverageBatcher:
    """Coalesces concurrent coverage queries into ``coverage_many`` calls."""

    def __init__(self, window_seconds: float, max_batch: int) -> None:
        self._window = float(window_seconds)
        self._max_batch = int(max_batch)
        self._buckets: Dict[str, _Bucket] = {}
        self.requests = 0
        self.batches = 0
        self.batched_queries = 0
        self.coalesced = 0
        self.max_batch_size = 0

    @property
    def window_seconds(self) -> float:
        return self._window

    async def coverage(self, snapshot: Snapshot, pattern: Pattern) -> int:
        """Coverage of ``pattern`` on ``snapshot``, batched when possible."""
        self.requests += 1
        loop = asyncio.get_running_loop()
        if self._window <= 0:
            return int(
                await loop.run_in_executor(
                    None, snapshot.oracle.coverage, pattern
                )
            )
        bucket = self._buckets.get(snapshot.fingerprint)
        if bucket is None:
            bucket = _Bucket(snapshot)
            self._buckets[snapshot.fingerprint] = bucket
            loop.create_task(self._flush_after_window(snapshot.fingerprint, bucket))
        future: "asyncio.Future[int]" = loop.create_future()
        entry = bucket.pending.get(pattern.values)
        if entry is not None:
            # Identical in-flight query: ride the existing engine slot.
            self.coalesced += 1
            entry[1].append(future)
        else:
            bucket.pending[pattern.values] = (pattern, [future])
            if len(bucket.pending) >= self._max_batch:
                self._detach(snapshot.fingerprint, bucket)
                await self._run_batch(bucket)
        return await future

    async def _flush_after_window(self, fingerprint: str, bucket: _Bucket) -> None:
        await asyncio.sleep(self._window)
        if self._detach(fingerprint, bucket):
            await self._run_batch(bucket)

    def _detach(self, fingerprint: str, bucket: _Bucket) -> bool:
        """Remove ``bucket`` from the intake map; False if already flushed."""
        if self._buckets.get(fingerprint) is bucket:
            del self._buckets[fingerprint]
            return True
        return False

    async def _run_batch(self, bucket: _Bucket) -> None:
        if not bucket.pending:
            return
        loop = asyncio.get_running_loop()
        entries = list(bucket.pending.values())
        patterns: List[Pattern] = [pattern for pattern, _ in entries]
        self.batches += 1
        self.batched_queries += len(entries)
        self.max_batch_size = max(self.max_batch_size, len(entries))
        try:
            counts = await loop.run_in_executor(
                None, bucket.snapshot.oracle.coverage_many, patterns
            )
        except Exception as error:  # engine failure fans back out to callers
            for _, futures in entries:
                for future in futures:
                    if not future.done():
                        future.set_exception(error)
            return
        for (_, futures), count in zip(entries, counts):
            count = int(count)
            for future in futures:
                if not future.done():  # cancelled waiters are skipped
                    future.set_result(count)

    def info(self) -> Dict[str, float]:
        batches = self.batches
        return {
            "window_ms": self._window * 1000,
            "max_batch": self._max_batch,
            "requests": self.requests,
            "batches": batches,
            "batched_queries": self.batched_queries,
            "coalesced": self.coalesced,
            "max_batch_size": self.max_batch_size,
            "mean_batch_size": (
                self.batched_queries / batches if batches else 0.0
            ),
        }
