"""Minimal HTTP/1.1 JSON transport over asyncio streams.

No web framework ships with the standard library, and this PR adds no
dependencies, so the transport is handwritten: a keep-alive HTTP/1.1
parser over ``asyncio.start_server`` streams, just enough protocol for
JSON request/response bodies.  All routing dispatches to
:class:`~repro.serve.service.CoverageService`; a
:class:`~repro.exceptions.ServeError` raised anywhere in a handler maps to
its HTTP status with the structured ``payload()`` as the JSON body, so
clients always get ``{"code", "message", ...}`` errors.

:class:`BackgroundServer` runs the loop in a daemon thread — the harness
tests and ``bench_serve.py`` use it to stand a real socket server up and
tear it down inside one process.
"""

from __future__ import annotations

import asyncio
import json
import threading
from typing import Any, Dict, Optional, Tuple

from repro.exceptions import ServeError
from repro.serve.config import ServeConfig
from repro.serve.service import CoverageService

#: Largest accepted request body; a delivery of a million short rows fits.
MAX_BODY_BYTES = 64 << 20
#: Largest accepted request-line + headers block.
MAX_HEADER_BYTES = 64 << 10

_STATUS_REASONS = {
    200: "OK",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


def _json_bytes(body: Dict) -> bytes:
    return json.dumps(body, separators=(",", ":")).encode("utf-8")


def _response(status: int, body: Dict, keep_alive: bool) -> bytes:
    payload = _json_bytes(body)
    reason = _STATUS_REASONS.get(status, "Unknown")
    head = (
        f"HTTP/1.1 {status} {reason}\r\n"
        f"Content-Type: application/json\r\n"
        f"Content-Length: {len(payload)}\r\n"
        f"Connection: {'keep-alive' if keep_alive else 'close'}\r\n"
        f"\r\n"
    )
    return head.encode("ascii") + payload


class HttpServer:
    """Routes HTTP requests on asyncio streams into the service."""

    def __init__(self, service: CoverageService) -> None:
        self.service = service
        self._server: Optional[asyncio.AbstractServer] = None

    # ------------------------------------------------------------------
    # protocol
    # ------------------------------------------------------------------
    async def _read_request(
        self, reader: asyncio.StreamReader
    ) -> Optional[Tuple[str, str, Dict]]:
        """One request as ``(method, path, json_body)``; None at EOF."""
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.IncompleteReadError:
            return None
        except asyncio.LimitOverrunError:
            raise ServeError(
                "bad_request", "request headers too large", status=400
            )
        if len(head) > MAX_HEADER_BYTES:
            raise ServeError(
                "bad_request", "request headers too large", status=400
            )
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, _version = lines[0].split(" ", 2)
        except ValueError:
            raise ServeError(
                "bad_request", f"malformed request line {lines[0]!r}"
            )
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        try:
            length = int(headers.get("content-length", "0"))
        except ValueError:
            raise ServeError("bad_request", "bad Content-Length header")
        if length > MAX_BODY_BYTES:
            raise ServeError(
                "payload_too_large",
                f"request body of {length} bytes exceeds the "
                f"{MAX_BODY_BYTES}-byte limit",
                status=413,
            )
        body: Dict = {}
        if length:
            raw = await reader.readexactly(length)
            try:
                body = json.loads(raw)
            except ValueError as error:
                raise ServeError("bad_request", f"bad JSON body: {error}")
            if not isinstance(body, dict):
                raise ServeError(
                    "bad_request", "JSON body must be an object"
                )
        return method.upper(), path.split("?", 1)[0], body

    async def _handle_connection(
        self, reader: asyncio.StreamReader, writer: asyncio.StreamWriter
    ) -> None:
        try:
            while True:
                try:
                    request = await self._read_request(reader)
                except ServeError as error:
                    # Parse errors poison the stream; answer and close.
                    writer.write(
                        _response(error.status, error.payload(), False)
                    )
                    await writer.drain()
                    break
                if request is None:
                    break
                method, path, body = request
                status, response = await self._dispatch(method, path, body)
                writer.write(_response(status, response, True))
                await writer.drain()
        except (ConnectionError, asyncio.IncompleteReadError):
            pass
        finally:
            writer.close()
            try:
                await writer.wait_closed()
            except (ConnectionError, asyncio.CancelledError):
                # Server-shutdown cancellation lands here; the transport is
                # already closing, so ending the task quietly is correct.
                pass

    # ------------------------------------------------------------------
    # routing
    # ------------------------------------------------------------------
    async def _dispatch(
        self, method: str, path: str, body: Dict
    ) -> Tuple[int, Dict]:
        try:
            handler = self._route(method, path)
            return 200, await handler(body)
        except ServeError as error:
            return error.status, error.payload()
        except Exception as error:  # noqa: BLE001 — a handler bug must not
            # kill the connection loop; surface it as a structured 500.
            return 500, {
                "code": "internal",
                "message": f"{type(error).__name__}: {error}",
            }

    def _route(self, method: str, path: str):
        routes = {
            ("GET", "/healthz"): self._handle_healthz,
            ("GET", "/stats"): self._handle_stats,
            ("POST", "/datasets"): self._handle_register,
            ("POST", "/label"): self._handle_label,
            ("POST", "/identify"): self._handle_identify,
            ("POST", "/sweep"): self._handle_sweep,
            ("POST", "/hierarchy"): self._handle_hierarchy,
            ("POST", "/enhance"): self._handle_enhance,
            ("POST", "/deliver"): self._handle_deliver,
        }
        handler = routes.get((method, path))
        if handler is None:
            known = {p for _, p in routes}
            if path in known:
                raise ServeError(
                    "method_not_allowed",
                    f"{method} not supported on {path}",
                    status=405,
                )
            raise ServeError(
                "not_found", f"no route {path!r}", status=404
            )
        return handler

    @staticmethod
    def _require(body: Dict, field: str) -> Any:
        if field not in body:
            raise ServeError(
                "bad_request", f"missing required field {field!r}"
            )
        return body[field]

    async def _handle_healthz(self, body: Dict) -> Dict:
        return {"status": "ok"}

    async def _handle_stats(self, body: Dict) -> Dict:
        return self.service.stats()

    async def _handle_register(self, body: Dict) -> Dict:
        return await self.service.register_dataset(
            self._require(body, "rows"), names=body.get("names")
        )

    async def _handle_label(self, body: Dict) -> Dict:
        return await self.service.label(
            self._require(body, "dataset"),
            self._require(body, "patterns"),
            threshold=body.get("threshold"),
        )

    async def _handle_identify(self, body: Dict) -> Dict:
        return await self.service.identify(
            self._require(body, "dataset"),
            self._require(body, "threshold"),
            algorithm=body.get("algorithm", "deepdiver"),
        )

    async def _handle_sweep(self, body: Dict) -> Dict:
        thresholds = body.get("thresholds", body.get("tau_range"))
        if thresholds is None:
            raise ServeError(
                "bad_request",
                "missing required field 'thresholds' (or 'tau_range')",
            )
        return await self.service.sweep(
            self._require(body, "dataset"),
            thresholds,
            attributes=body.get("attributes"),
            bootstrap=body.get("bootstrap", 0),
            seed=body.get("seed", 0),
            max_level=body.get("max_level"),
        )

    async def _handle_hierarchy(self, body: Dict) -> Dict:
        return await self.service.hierarchy(
            self._require(body, "dataset"),
            self._require(body, "hierarchies"),
            self._require(body, "threshold"),
            max_level=body.get("max_level"),
            remedies=body.get("remedies", True),
        )

    async def _handle_enhance(self, body: Dict) -> Dict:
        return await self.service.enhance(
            self._require(body, "dataset"),
            self._require(body, "threshold"),
            self._require(body, "level"),
            algorithm=body.get("algorithm", "deepdiver"),
        )

    async def _handle_deliver(self, body: Dict) -> Dict:
        return await self.service.deliver(
            self._require(body, "dataset"),
            self._require(body, "rows"),
            threshold=body.get("threshold"),
            algorithm=body.get("algorithm", "deepdiver"),
        )

    # ------------------------------------------------------------------
    # lifecycle
    # ------------------------------------------------------------------
    async def start(self, host: str, port: int) -> Tuple[str, int]:
        """Bind and start serving; returns the bound ``(host, port)``."""
        self._server = await asyncio.start_server(
            self._handle_connection, host, port, limit=MAX_HEADER_BYTES
        )
        bound = self._server.sockets[0].getsockname()
        return bound[0], bound[1]

    async def serve_forever(self) -> None:
        if self._server is None:
            raise ServeError("bad_state", "server not started", status=500)
        async with self._server:
            await self._server.serve_forever()

    async def stop(self) -> None:
        if self._server is not None:
            self._server.close()
            await self._server.wait_closed()
            self._server = None


async def run_server(config: ServeConfig) -> None:
    """Build the service and serve until cancelled (the CLI entry point)."""
    service = CoverageService(config)
    server = HttpServer(service)
    host, port = await server.start(config.host, config.port)
    print(f"repro serve: listening on http://{host}:{port}", flush=True)
    try:
        await server.serve_forever()
    finally:
        await server.stop()
        service.close()


class BackgroundServer:
    """A served :class:`CoverageService` on a daemon-thread event loop.

    Used by the tests and the benchmark to run client code (blocking
    ``http.client`` calls, thread pools) against a live server in the same
    process::

        with BackgroundServer(config) as server:
            ... http.client.HTTPConnection(server.host, server.port) ...

    ``port=0`` in the config binds an ephemeral port; the bound address is
    on ``self.host`` / ``self.port`` once the context is entered.  The
    service itself is exposed as ``self.service`` so in-process callers can
    also drive it directly via :meth:`submit`.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.service = CoverageService(config)
        self.host = config.host
        self.port = config.port
        self._loop: Optional[asyncio.AbstractEventLoop] = None
        self._thread: Optional[threading.Thread] = None
        self._started = threading.Event()
        self._startup_error: Optional[BaseException] = None

    def __enter__(self) -> "BackgroundServer":
        self._thread = threading.Thread(
            target=self._run, name="repro-serve", daemon=True
        )
        self._thread.start()
        if not self._started.wait(timeout=30):
            raise ServeError("bad_state", "server failed to start", 500)
        if self._startup_error is not None:
            raise self._startup_error
        return self

    def _run(self) -> None:
        loop = asyncio.new_event_loop()
        asyncio.set_event_loop(loop)
        self._loop = loop
        server = HttpServer(self.service)
        try:
            self.host, self.port = loop.run_until_complete(
                server.start(self.config.host, self.config.port)
            )
        except BaseException as error:  # bind failure reaches __enter__
            self._startup_error = error
            self._started.set()
            loop.close()
            return
        self._started.set()
        try:
            loop.run_forever()
        finally:
            loop.run_until_complete(server.stop())
            # Let in-flight connection tasks unwind before closing the loop.
            pending = asyncio.all_tasks(loop)
            for task in pending:
                task.cancel()
            if pending:
                loop.run_until_complete(
                    asyncio.gather(*pending, return_exceptions=True)
                )
            loop.close()

    def submit(self, coroutine) -> Any:
        """Run ``coroutine`` on the server loop; blocks for the result."""
        if self._loop is None:
            raise ServeError("bad_state", "server not running", 500)
        return asyncio.run_coroutine_threadsafe(
            coroutine, self._loop
        ).result(timeout=300)

    def __exit__(self, *exc_info) -> None:
        if self._loop is not None:
            self._loop.call_soon_threadsafe(self._loop.stop)
        if self._thread is not None:
            self._thread.join(timeout=30)
        self.service.close()
        self._loop = None
        self._thread = None
