"""Before/after comparison of coverage assessments.

After acquiring data, the owner re-runs MUP identification and wants to
know what the acquisition bought: which uncovered regions were resolved,
which persist, and which appear newly maximal (a previously dominated
pattern becomes maximal once its more general ancestor is covered — that is
progress, not regression, and the diff labels it accordingly).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

from repro.core.mups.base import MupResult
from repro.core.pattern import Pattern
from repro.exceptions import ReproError


@dataclass(frozen=True)
class CoverageDiff:
    """Outcome of comparing two MUP identification runs.

    Attributes:
        resolved: MUPs of the *before* run that are covered now.
        persisting: MUPs present in both runs.
        refined: new MUPs dominated by a resolved *before* MUP — the region
            shrank from a general gap to more specific ones.
        regressed: new MUPs not explained by refinement (possible only if
            data was also removed or the threshold changed).
        before_level: maximum covered level before.
        after_level: maximum covered level after.
    """

    resolved: Tuple[Pattern, ...]
    persisting: Tuple[Pattern, ...]
    refined: Tuple[Pattern, ...]
    regressed: Tuple[Pattern, ...]
    before_level: int
    after_level: int

    @property
    def improved(self) -> bool:
        """True when the maximum covered level went up."""
        return self.after_level > self.before_level

    def render(self, schema=None) -> str:
        """Plain-text summary of the diff."""
        def show(pattern: Pattern) -> str:
            if schema is None:
                return str(pattern)
            return f"{pattern} ({pattern.describe(schema)})"

        lines = [
            f"max covered level: {self.before_level} -> {self.after_level}",
            f"resolved {len(self.resolved)}, persisting {len(self.persisting)}, "
            f"refined {len(self.refined)}, regressed {len(self.regressed)}",
        ]
        for title, patterns in [
            ("resolved", self.resolved),
            ("persisting", self.persisting),
            ("refined", self.refined),
            ("regressed", self.regressed),
        ]:
            for pattern in patterns[:10]:
                lines.append(f"  {title}: {show(pattern)}")
        return "\n".join(lines)


def coverage_diff(before: MupResult, after: MupResult, d: int) -> CoverageDiff:
    """Compare two MUP identification runs over the same schema.

    Args:
        before: the assessment before data acquisition.
        after: the assessment afterwards (same threshold expected).
        d: number of attributes (for max-covered-level of empty results).
    """
    if before.threshold != after.threshold:
        raise ReproError(
            f"runs used different thresholds ({before.threshold} vs "
            f"{after.threshold}); the diff would be meaningless"
        )
    before_set = set(before.mups)
    after_set = set(after.mups)
    persisting = sorted(before_set & after_set)
    resolved = sorted(before_set - after_set)
    new = sorted(after_set - before_set)
    refined: List[Pattern] = []
    regressed: List[Pattern] = []
    for pattern in new:
        if any(old.dominates(pattern) for old in resolved):
            refined.append(pattern)
        else:
            regressed.append(pattern)
    return CoverageDiff(
        resolved=tuple(resolved),
        persisting=tuple(persisting),
        refined=tuple(refined),
        regressed=tuple(regressed),
        before_level=before.max_covered_level(d),
        after_level=after.max_covered_level(d),
    )
