"""MUP analysis over generalization lattices and bucketization sweeps.

The paper's model is flat categorical, but §II points at attribute
hierarchies (ZIP → county → state) and bucketized continuous attributes as
the way real coverage workloads arrive.  This module promotes the
``data/hierarchy.py`` / ``data/bucketize.py`` seeds to first-class
analysis:

* :class:`HierarchyStack` — an ordered chain of
  :class:`~repro.data.hierarchy.AttributeHierarchy` levels per attribute
  with validated refinement (every finer level must factor through the
  coarser one), plus the rollup / step-map plumbing the searches ride.
* :func:`find_mups_hierarchical` — level-wise search that starts at the
  coarsest rollup and drills down only into uncovered regions.  The key
  monotone fact: rolling up only *pools* rows, so for any pattern ``P`` at
  a finer level, ``cov_fine(P) <= cov_coarse(image(P))``.  A candidate
  whose coarse image was already recorded below τ is therefore certified
  uncovered without ever consulting the engine — and because a candidate
  is only generated when all its (finer) parents are covered, the image's
  parents were covered too, so the image is always in the coarser level's
  table.  The per-level MUP sets are *bit-identical* to running
  :func:`~repro.core.mups.find_mups` on the corresponding
  :func:`~repro.data.hierarchy.rollup` dataset; the pruning only removes
  redundant counting.  Each finest-level MUP is reported alongside its
  most *specific covered generalization* — the "remedy by generalizing"
  answer (:class:`~repro.core.enhancement.GeneralizationRemedy`).
* :func:`bucketize_sweep` — τ-coverage as a function of bucket count for a
  numeric column.  Nested equal-width bucketizations form a hierarchy
  chain (every coarse bucket is a union of fine ones), so the sweep builds
  *one* engine over the finest bucketization and answers every coarser
  width by drilling coarse candidates down to fine patterns through the
  shared ``coverage_many(..., memo=)`` count memo — plus the same
  coarse-bound pruning between widths.  One sweep beats independent
  per-width runs without giving up bit-identity.
"""

from __future__ import annotations

import heapq
import itertools
from dataclasses import dataclass
from typing import Callable, Dict, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro._util import SearchStats, Stopwatch
from repro.core.coverage import CoverageOracle
from repro.core.engine import AUTO, EngineConfig, EngineSpec
from repro.core.enhancement.hierarchical import GeneralizationRemedy
from repro.core.mups.base import MupResult, resolve_threshold
from repro.core.pattern import Pattern, X
from repro.data.bucketize import bucketize_equal_width, bucketize_quantiles
from repro.data.dataset import Dataset, Schema
from repro.data.hierarchy import AttributeHierarchy, Rollup, drill_down, rollup
from repro.exceptions import DataError, SchemaError

__all__ = [
    "HierarchyStack",
    "HierarchyLevel",
    "HierarchicalMupResult",
    "BucketSweepPoint",
    "BucketSweepResult",
    "find_mups_hierarchical",
    "bucketize_sweep",
    "bucketized_dataset",
]


# ----------------------------------------------------------------------
# the stack
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HierarchyStack:
    """Ordered generalization chains per attribute, validated to refine.

    Level 0 is the base dataset.  For an attribute with chain ``(h1, h2,
    ...)``, each ``hk`` maps the attribute's *base* codes onto level-``k``
    groups, and every finer level must factor through the coarser one:
    base codes sharing a level-``k`` group must share a level-``k+1``
    group.  Attributes with shorter chains saturate at their coarsest
    level; the stack's ``depth`` is the longest chain.

    Attributes:
        chains: attribute index → cumulative base→level-``k`` maps.
        steps: attribute index → adjacent step maps (level-``k`` codes →
            level-``k+1`` codes), derived from the factoring.
        depth: number of levels above the base.
    """

    chains: Mapping[int, Tuple[AttributeHierarchy, ...]]
    steps: Mapping[int, Tuple[AttributeHierarchy, ...]]
    depth: int

    @classmethod
    def of(
        cls, source, chains: Mapping[str, Sequence[AttributeHierarchy]]
    ) -> "HierarchyStack":
        """Validate and build a stack against a dataset (or schema).

        Args:
            source: the base :class:`~repro.data.Dataset` (or its schema).
            chains: attribute name → hierarchy levels, finest first; each
                level maps the attribute's base codes.
        """
        schema: Schema = getattr(source, "schema", source)
        by_index: Dict[int, Tuple[AttributeHierarchy, ...]] = {}
        steps: Dict[int, Tuple[AttributeHierarchy, ...]] = {}
        for name, chain in chains.items():
            index = schema.index_of(name)
            chain = tuple(chain)
            if not chain:
                raise SchemaError(f"empty hierarchy chain for {name!r}")
            cardinality = schema.cardinalities[index]
            for level in chain:
                if level.attribute != name:
                    raise SchemaError(
                        f"chain for {name!r} contains a hierarchy for "
                        f"{level.attribute!r}"
                    )
                if len(level.groups) != cardinality:
                    raise SchemaError(
                        f"hierarchy level for {name!r} maps "
                        f"{len(level.groups)} values; attribute has "
                        f"{cardinality}"
                    )
            # factor_through raises SchemaError when a finer level does not
            # refine the coarser one; its result is the adjacent step map.
            attr_steps = [chain[0]]
            for finer, coarser in zip(chain, chain[1:]):
                attr_steps.append(finer.factor_through(coarser))
            by_index[index] = chain
            steps[index] = tuple(attr_steps)
        if not by_index:
            raise SchemaError("a hierarchy stack needs at least one chain")
        depth = max(len(chain) for chain in by_index.values())
        return cls(chains=by_index, steps=steps, depth=depth)

    def chain_length(self, index: int) -> int:
        """Hierarchy levels above the base for attribute ``index``."""
        return len(self.chains.get(index, ()))

    def level_hierarchies(self, level: int) -> Dict[int, AttributeHierarchy]:
        """Base→level maps in effect at ``level`` (saturating short chains)."""
        if not 0 <= level <= self.depth:
            raise DataError(f"level {level} outside stack depth {self.depth}")
        if level == 0:
            return {}
        return {
            index: chain[min(level, len(chain)) - 1]
            for index, chain in self.chains.items()
        }

    def rollup_to(self, dataset: Dataset, level: int) -> Rollup:
        """The dataset rolled up to ``level`` (level 0 = the base)."""
        hierarchies = self.level_hierarchies(level)
        if not hierarchies:
            return Rollup(dataset, {})
        return rollup(dataset, hierarchies.values())

    def step_maps(self, level: int) -> Dict[int, AttributeHierarchy]:
        """Maps from level-``level`` codes to level-``level + 1`` codes.

        Attributes saturated at or below ``level`` are omitted (identity).
        """
        return {
            index: attr_steps[level]
            for index, attr_steps in self.steps.items()
            if level < len(attr_steps)
        }


# ----------------------------------------------------------------------
# the shared level-wise traversal
# ----------------------------------------------------------------------
def _levelwise_mups(
    cardinalities: Sequence[int],
    threshold: int,
    max_level: Optional[int],
    evaluate: Callable[[List[Pattern]], Sequence[int]],
    bound: Optional[Callable[[Tuple[int, ...]], Optional[int]]],
) -> Tuple[Tuple[Pattern, ...], Dict[Tuple[int, ...], int], int, int, int]:
    """Apriori-style MUP search with an optional coarse upper bound.

    ``bound(values)`` returns an upper bound on the candidate's coverage
    (or ``None``).  A bound below τ certifies the candidate uncovered —
    since candidates are only generated with all parents covered, such a
    candidate is a MUP without an engine count.  The returned table maps
    every generated candidate to its count (or inherited bound), which is
    itself a valid upper bound one refinement further down.

    Returns:
        ``(mups, table, nodes_generated, bound_skips, pruned)``.
    """
    d = len(cardinalities)
    root = Pattern.root(d)
    nodes = 1
    skips = 0
    pruned = 0
    root_cov = int(evaluate([root])[0])
    table: Dict[Tuple[int, ...], int] = {root.values: root_cov}
    if root_cov < threshold:
        return (root,), table, nodes, skips, pruned
    # The frontier works on plain value tuples; Pattern objects are built
    # only for the candidates that actually reach the engine.  Each entry
    # carries its rightmost deterministic attribute so children extend
    # strictly rightward (each candidate generated exactly once).
    mups: List[Tuple[int, ...]] = []
    expandable: List[Tuple[Tuple[int, ...], int]] = [(root.values, -1)]
    lookup = table.get
    depth = d if max_level is None else max(0, min(max_level, d))
    for _ in range(depth):
        candidates: List[Tuple[Tuple[int, ...], int]] = []
        for values, start in expandable:
            # Deterministic indices are shared by every child: the direct
            # parent (drop the new attribute) is `values` itself, already
            # known covered, so only these remaining parents need checks.
            deterministic = [
                index for index in range(start + 1) if values[index] != X
            ]
            for attribute in range(start + 1, d):
                prefix = values[:attribute]
                suffix = values[attribute + 1 :]
                for value in range(cardinalities[attribute]):
                    child = prefix + (value,) + suffix
                    nodes += 1
                    survives = True
                    for index in deterministic:
                        coverage = lookup(
                            child[:index] + (X,) + child[index + 1 :]
                        )
                        if coverage is None or coverage < threshold:
                            survives = False
                            break
                    if not survives:
                        pruned += 1
                        continue
                    upper = bound(child) if bound is not None else None
                    if upper is not None and upper < threshold:
                        # Certified uncovered by the coarser level; all
                        # parents are covered, so this is a MUP.  The bound
                        # stays in the table as the child's (upper-bound)
                        # coverage for the next refinement.
                        table[child] = upper
                        mups.append(child)
                        skips += 1
                    else:
                        candidates.append((child, attribute))
        if not candidates:
            break
        counts = evaluate([Pattern(child) for child, _ in candidates])
        expandable = []
        for (child, attribute), coverage in zip(candidates, counts):
            coverage = int(coverage)
            table[child] = coverage
            if coverage < threshold:
                mups.append(child)
            else:
                expandable.append((child, attribute))
        if not expandable:
            break
    return (
        tuple(sorted(Pattern(values) for values in mups)),
        table,
        nodes,
        skips,
        pruned,
    )


def _plan_hierarchy_engine(dataset: Dataset, engine: EngineSpec) -> EngineSpec:
    """Resolve ``None``/``"auto"`` specs with the planner's ``"hierarchy"``
    shape.

    ``None`` plans instead of falling through to the default backend: the
    default dense engine fronts an eager unique-rows pass, and the search
    builds a fresh engine per stack level over a freshly rolled dataset —
    paying that pass once per level would dwarf the counting it saves.
    """
    if engine is None or (isinstance(engine, str) and engine == AUTO):
        engine = EngineConfig(backend=AUTO)
    if isinstance(engine, EngineConfig) and engine.is_auto:
        from repro.core.engine.planner import plan_engine

        return plan_engine(dataset, engine, query_shape="hierarchy").config
    return engine


def _level_engine_spec(engine: EngineSpec) -> EngineSpec:
    """Spec reusable for rolled-up datasets; prebuilt instances are bound
    to the base dataset and cannot be shared with the coarser levels."""
    if engine is None or isinstance(engine, (str, EngineConfig)):
        return engine
    return None


# ----------------------------------------------------------------------
# hierarchical search results
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class HierarchyLevel:
    """One stack level: its rollup and the MUP result on it."""

    level: int
    rollup: Rollup
    result: MupResult

    def as_dict(self) -> Dict[str, object]:
        return {
            "level": self.level,
            "cardinalities": list(self.rollup.dataset.cardinalities),
            "mups": [list(p.values) for p in self.result.mups],
            "mup_count": len(self.result),
            "max_covered_level": self.result.max_covered_level(
                self.rollup.dataset.d
            ),
            "stats": self.result.stats.as_dict(),
        }


@dataclass(frozen=True)
class HierarchicalMupResult:
    """Output of :func:`find_mups_hierarchical`.

    Attributes:
        threshold: absolute τ.
        levels: per stack level (base first), the rollup and its MUPs.
        remedies: per finest-level MUP, its most specific covered
            generalization (empty when remedies were not requested).
        stats: aggregate traversal counters; ``pruned`` includes the
            candidates certified uncovered by a coarser level.
        max_level: the level cap forwarded to every per-level search.
    """

    threshold: int
    levels: Tuple[HierarchyLevel, ...]
    remedies: Tuple[GeneralizationRemedy, ...]
    stats: SearchStats
    max_level: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "levels", tuple(sorted(self.levels, key=lambda l: l.level))
        )

    @property
    def mups(self) -> Tuple[Pattern, ...]:
        """The finest-level (base dataset) MUPs."""
        return self.at_level(0).mups

    def at_level(self, level: int) -> MupResult:
        for entry in self.levels:
            if entry.level == level:
                return entry.result
        raise DataError(f"no stack level {level} in this result")

    def as_dict(self) -> Dict[str, object]:
        return {
            "threshold": self.threshold,
            "levels": [entry.as_dict() for entry in self.levels],
            "remedies": [remedy.as_dict() for remedy in self.remedies],
            "stats": self.stats.as_dict(),
        }


# ----------------------------------------------------------------------
# the hierarchical search
# ----------------------------------------------------------------------
def find_mups_hierarchical(
    dataset: Dataset,
    stack: HierarchyStack,
    threshold: Optional[int] = None,
    threshold_rate: Optional[float] = None,
    max_level: Optional[int] = None,
    oracle: Optional[CoverageOracle] = None,
    engine: EngineSpec = None,
    remedies: bool = True,
    memo: Optional[Dict[Tuple[int, ...], int]] = None,
) -> HierarchicalMupResult:
    """Identify MUPs at every level of a hierarchy stack, coarsest first.

    Each level's MUP set is bit-identical to ``find_mups`` on the
    corresponding rolled-up dataset; the coarser levels' tables only serve
    as upper bounds that let the finer searches skip counting inside
    regions already known to be uncovered.

    Args:
        dataset: the base (finest) dataset.
        stack: validated hierarchy stack.
        threshold / threshold_rate: exactly one of absolute τ or a rate.
        max_level: optional pattern-level cap applied at every stack level.
        oracle: optional warm oracle for the *base* dataset.
        engine: engine spec; ``"auto"`` plans with the ``"hierarchy"``
            query shape per level.  Prebuilt engine instances apply to the
            base level only.
        remedies: also compute, per finest-level MUP, its most specific
            covered generalization.
        memo: optional shared base-level count memo.
    """
    tau = resolve_threshold(dataset, threshold, threshold_rate)
    watch = Stopwatch()
    base_memo: Dict[Tuple[int, ...], int] = {} if memo is None else memo
    base_oracle = oracle
    if base_oracle is None:
        base_oracle = CoverageOracle(
            dataset, _plan_hierarchy_engine(dataset, engine)
        )
    level_spec = _level_engine_spec(engine)
    # Warm the base aggregation once: every rolled level then derives its
    # unique rows from it (see ``rollup``) instead of re-sorting n rows.
    dataset.unique_rows()

    levels: List[HierarchyLevel] = []
    coarse_table: Optional[Dict[Tuple[int, ...], int]] = None
    coarse_steps: Dict[int, AttributeHierarchy] = {}
    totals = dict(nodes=0, evaluations=0, pruned=0, skips=0)
    for level in range(stack.depth, -1, -1):
        roll = stack.rollup_to(dataset, level)
        if level == 0:
            level_oracle, level_memo, created = base_oracle, base_memo, None
        else:
            level_oracle = CoverageOracle(
                roll.dataset, _plan_hierarchy_engine(roll.dataset, level_spec)
            )
            level_memo, created = {}, level_oracle

        bound = None
        if coarse_table is not None:
            steps, prev = coarse_steps, coarse_table

            def bound(values, steps=steps, prev=prev):
                image = tuple(
                    value
                    if value == X or index not in steps
                    else steps[index].groups[value]
                    for index, value in enumerate(values)
                )
                return prev.get(image)

        level_watch = Stopwatch()
        evaluations_before = level_oracle.evaluations

        def evaluate(patterns, oracle=level_oracle, memo=level_memo):
            return oracle.coverage_many(patterns, memo=memo)

        try:
            mups, table, nodes, skips, pruned = _levelwise_mups(
                roll.dataset.cardinalities, tau, max_level, evaluate, bound
            )
            evaluations = level_oracle.evaluations - evaluations_before
        finally:
            if created is not None:
                created.engine.close()
        stats = SearchStats(
            nodes_generated=nodes,
            coverage_evaluations=evaluations,
            pruned=pruned + skips,
            seconds=level_watch.elapsed(),
        )
        levels.append(
            HierarchyLevel(
                level=level,
                rollup=roll,
                result=MupResult(mups, tau, stats, max_level=max_level),
            )
        )
        totals["nodes"] += nodes
        totals["evaluations"] += evaluations
        totals["pruned"] += pruned
        totals["skips"] += skips
        coarse_table = table
        # Step maps translating the next (finer) level's codes into this
        # level's — how `bound` looks candidates up in `table`.
        coarse_steps = stack.step_maps(level - 1) if level > 0 else {}

    base_mups = levels[-1].result.mups
    remedy_records: Tuple[GeneralizationRemedy, ...] = ()
    if remedies:
        remedy_records = tuple(
            _most_specific_covered(mup, stack, tau, base_oracle, base_memo)
            for mup in base_mups
        )
    return HierarchicalMupResult(
        threshold=tau,
        levels=tuple(levels),
        remedies=remedy_records,
        stats=SearchStats(
            nodes_generated=totals["nodes"],
            coverage_evaluations=totals["evaluations"],
            pruned=totals["pruned"] + totals["skips"],
            seconds=watch.elapsed(),
        ),
        max_level=max_level,
    )


def _most_specific_covered(
    mup: Pattern,
    stack: HierarchyStack,
    threshold: int,
    oracle: CoverageOracle,
    memo: Dict[Tuple[int, ...], int],
) -> GeneralizationRemedy:
    """Cheapest-first search for the closest covered generalization.

    States are per-attribute climb counts; each step coarsens one
    deterministic attribute by one hierarchy level (one past the chain top
    widens it to ``X``).  Coverage of a mixed-level generalization is the
    pooled coverage of its base-level drill-down, evaluated through the
    shared memo.  The all-``X`` state is reachable, so the search fails
    only when the dataset itself is smaller than τ.
    """
    d = len(mup)
    deterministic = mup.deterministic_indices()
    caps = {index: stack.chain_length(index) + 1 for index in deterministic}
    start = (0,) * d
    heap: List[Tuple[int, Tuple[int, ...]]] = [(0, start)]
    seen = set()
    while heap:
        steps, levels = heapq.heappop(heap)
        if levels in seen:
            continue
        seen.add(levels)
        if steps > 0:
            generalized, expansions = _generalized_pattern(mup, stack, levels)
            coverage = int(sum(oracle.coverage_many(expansions, memo=memo)))
            if coverage >= threshold:
                return GeneralizationRemedy(
                    mup=mup,
                    generalized=generalized,
                    levels=levels,
                    coverage=coverage,
                    steps=steps,
                )
        for index in deterministic:
            if levels[index] < caps[index]:
                child = (
                    levels[:index] + (levels[index] + 1,) + levels[index + 1 :]
                )
                if child not in seen:
                    heapq.heappush(heap, (steps + 1, child))
    return GeneralizationRemedy(
        mup=mup, generalized=None, levels=start, coverage=0, steps=0
    )


def _generalized_pattern(
    mup: Pattern, stack: HierarchyStack, levels: Tuple[int, ...]
) -> Tuple[Pattern, List[Pattern]]:
    """The mixed-level generalization of ``mup`` plus its base expansion."""
    values: List[int] = []
    choices: List[Tuple[int, ...]] = []
    for index, value in enumerate(mup.values):
        climb = levels[index]
        if value == X or climb == 0:
            values.append(value)
            choices.append((value,))
            continue
        chain = stack.chains.get(index, ())
        if climb > len(chain):
            values.append(X)
            choices.append((X,))
        else:
            hierarchy = chain[climb - 1]
            group = hierarchy.groups[value]
            values.append(group)
            choices.append(hierarchy.fine_codes_of(group))
    expansions = [Pattern(combo) for combo in itertools.product(*choices)]
    return Pattern(values), expansions


# ----------------------------------------------------------------------
# bucketization sweeps
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class BucketSweepPoint:
    """One bucket count on the sweep: its labels and MUP result."""

    buckets: int
    cardinality: int
    labels: Tuple[str, ...]
    result: MupResult

    def as_dict(self) -> Dict[str, object]:
        return {
            "buckets": self.buckets,
            "cardinality": self.cardinality,
            "labels": list(self.labels),
            "mups": [list(p.values) for p in self.result.mups],
            "mup_count": len(self.result),
            "stats": self.result.stats.as_dict(),
        }


@dataclass(frozen=True)
class BucketSweepResult:
    """Output of :func:`bucketize_sweep`: per bucket count, the MUP set of
    the dataset extended with that bucketization of the numeric column."""

    attribute: str
    threshold: int
    points: Tuple[BucketSweepPoint, ...]
    stats: SearchStats

    def __post_init__(self) -> None:
        object.__setattr__(
            self, "points", tuple(sorted(self.points, key=lambda p: p.buckets))
        )

    def point_for(self, buckets: int) -> BucketSweepPoint:
        for point in self.points:
            if point.buckets == buckets:
                return point
        raise DataError(f"no bucket count {buckets} in this sweep")

    def as_dict(self) -> Dict[str, object]:
        return {
            "attribute": self.attribute,
            "threshold": self.threshold,
            "points": [point.as_dict() for point in self.points],
            "stats": self.stats.as_dict(),
        }


def bucketized_dataset(
    dataset: Dataset,
    values: Sequence[float],
    buckets: int,
    name: str = "bucket",
    method: str = "equal_width",
) -> Dataset:
    """``dataset`` extended with a bucketized numeric column.

    The independent-runs counterpart of :func:`bucketize_sweep`: build the
    extended dataset for one bucket count and hand it to any analysis.
    """
    if method == "equal_width":
        codes, labels = bucketize_equal_width(values, buckets)
    elif method == "quantiles":
        codes, labels = bucketize_quantiles(values, buckets)
    else:
        raise DataError(
            f"unknown bucketization method {method!r} "
            "(expected equal_width or quantiles)"
        )
    return _append_column(dataset, name, codes, labels)


def _append_column(
    dataset: Dataset, name: str, codes: np.ndarray, labels: Sequence[str]
) -> Dataset:
    if name in dataset.schema.names:
        raise DataError(f"dataset already has an attribute named {name!r}")
    if len(codes) != dataset.n:
        raise DataError(
            f"column has {len(codes)} values but the dataset has "
            f"{dataset.n} rows"
        )
    if dataset.schema.value_labels is not None:
        value_labels: Optional[Tuple[Tuple[str, ...], ...]] = tuple(
            tuple(per) for per in dataset.schema.value_labels
        ) + (tuple(labels),)
    else:
        value_labels = tuple(
            tuple(str(code) for code in range(c))
            for c in dataset.cardinalities
        ) + (tuple(labels),)
    schema = Schema(
        tuple(dataset.schema.names) + (name,),
        tuple(dataset.cardinalities) + (len(labels),),
        value_labels,
    )
    rows = np.column_stack([dataset.rows, np.asarray(codes, dtype=np.int32)])
    return Dataset(
        schema,
        rows,
        labels={n: dataset.label(n) for n in dataset.label_names},
        validate=False,
    )


def bucketize_sweep(
    dataset: Dataset,
    values: Sequence[float],
    bucket_counts: Sequence[int],
    threshold: Optional[int] = None,
    threshold_rate: Optional[float] = None,
    name: str = "bucket",
    oracle: Optional[CoverageOracle] = None,
    engine: EngineSpec = None,
    memo: Optional[Dict[Tuple[int, ...], int]] = None,
) -> BucketSweepResult:
    """MUP sets for every equal-width bucket count of a numeric column.

    Bucket counts must *nest* (each must divide the largest) so that every
    coarse bucket is a union of fine ones; the sweep then builds one engine
    over the finest bucketization and answers each coarser count by
    drilling its candidates down (:func:`~repro.data.hierarchy.drill_down`)
    into fine patterns counted through a shared ``coverage_many`` memo —
    counts flow across widths instead of being recomputed per width.  Each
    count's MUP set is bit-identical to ``find_mups`` on
    :func:`bucketized_dataset` at that count.

    Args:
        dataset: the categorical base dataset (without the numeric column).
        values: the numeric column, one value per row.
        bucket_counts: equal-width bucket counts to sweep (each ≥ 2, each
            dividing the maximum).
        threshold / threshold_rate: exactly one of absolute τ or a rate.
        name: attribute name for the bucket column.
        oracle: optional warm oracle — must be over the *finest*
            bucketized dataset (as built by ``bucketized_dataset`` at the
            maximum count); mostly for internal reuse.
        engine: engine spec for the finest-level engine.
        memo: optional shared count memo for the finest-level patterns.
    """
    counts = sorted({int(b) for b in bucket_counts})
    if not counts:
        raise DataError("need at least one bucket count")
    if counts[0] < 2:
        raise DataError(f"bucket counts must be >= 2, got {counts[0]}")
    finest = counts[-1]
    broken = [c for c in counts if finest % c != 0]
    if broken:
        raise DataError(
            f"bucket counts must nest for count reuse: {broken} do not "
            f"divide the largest count {finest}"
        )

    fine_codes, fine_labels = bucketize_equal_width(values, finest)
    fine_dataset = _append_column(dataset, name, fine_codes, fine_labels)
    fine_cardinality = len(fine_labels)  # 1 when the column is constant
    bucket_index = fine_dataset.d - 1
    tau = resolve_threshold(fine_dataset, threshold, threshold_rate)
    watch = Stopwatch()
    shared_memo: Dict[Tuple[int, ...], int] = {} if memo is None else memo
    if oracle is None:
        oracle = CoverageOracle(
            fine_dataset, _plan_hierarchy_engine(fine_dataset, engine)
        )

    points: List[BucketSweepPoint] = []
    tables: Dict[int, Dict[Tuple[int, ...], int]] = {}
    totals = dict(nodes=0, evaluations=0, pruned=0, skips=0)
    for count in counts:  # ascending = coarsest first
        if fine_cardinality == 1:
            groups: Tuple[int, ...] = (0,)
            labels = list(fine_labels)
        else:
            groups = tuple(f * count // finest for f in range(finest))
            _, labels = bucketize_equal_width(values, count)
        hierarchy = AttributeHierarchy(name, groups, tuple(labels))
        roll = rollup(fine_dataset, [hierarchy])

        bound = None
        # Bound against the finest previously-swept count this one nests
        # into (counts ascending ⇒ any divisor already has a table).
        divisors = [c for c in tables if count % c == 0]
        if divisors:
            coarser = max(divisors)
            prev = tables[coarser]
            ratio = count // coarser

            def bound(candidate, prev=prev, ratio=ratio, i=bucket_index):
                value = candidate[i]
                if value != X:
                    candidate = candidate[:i] + (value // ratio,) + candidate[i + 1 :]
                return prev.get(candidate)

        def evaluate(patterns, roll=roll):
            fine_batches = [drill_down(p, roll) for p in patterns]
            flat = [p for batch in fine_batches for p in batch]
            fine_counts = oracle.coverage_many(flat, memo=shared_memo)
            out: List[int] = []
            offset = 0
            for batch in fine_batches:
                out.append(int(sum(fine_counts[offset : offset + len(batch)])))
                offset += len(batch)
            return out

        point_watch = Stopwatch()
        evaluations_before = oracle.evaluations
        mups, table, nodes, skips, pruned = _levelwise_mups(
            roll.dataset.cardinalities, tau, None, evaluate, bound
        )
        evaluations = oracle.evaluations - evaluations_before
        stats = SearchStats(
            nodes_generated=nodes,
            coverage_evaluations=evaluations,
            pruned=pruned + skips,
            seconds=point_watch.elapsed(),
        )
        points.append(
            BucketSweepPoint(
                buckets=count,
                cardinality=len(labels),
                labels=tuple(labels),
                result=MupResult(mups, tau, stats),
            )
        )
        tables[count] = table
        totals["nodes"] += nodes
        totals["evaluations"] += evaluations
        totals["pruned"] += pruned
        totals["skips"] += skips
    return BucketSweepResult(
        attribute=name,
        threshold=tau,
        points=tuple(points),
        stats=SearchStats(
            nodes_generated=totals["nodes"],
            coverage_evaluations=totals["evaluations"],
            pruned=totals["pruned"] + totals["skips"],
            seconds=watch.elapsed(),
        ),
    )
