"""Human-readable reports for MUP identification and enhancement runs.

The paper stresses the human-in-the-loop: a domain expert reads the MUPs,
marks the material ones, and reviews the acquisition plan.  These helpers
render both artefacts with attribute names and value labels so the expert
reads "race=hispanic, marital_status=widowed" rather than ``XX23``.
"""

from __future__ import annotations

from typing import Optional

from repro._util import format_table
from repro.core.coverage import CoverageOracle
from repro.core.engine import EngineSpec
from repro.core.enhancement.greedy import EnhancementResult
from repro.core.mups.base import MupResult
from repro.data.dataset import Dataset


def mup_report(
    dataset: Dataset,
    result: MupResult,
    limit: Optional[int] = None,
    oracle: Optional[CoverageOracle] = None,
    engine: EngineSpec = None,
) -> str:
    """Tabulate a MUP identification result.

    Columns: the compact pattern, its level, its actual coverage, and the
    human-readable description.
    """
    oracle = oracle or CoverageOracle(dataset, engine=engine)
    ranked = sorted(result.mups, key=lambda p: (p.level, p.values))
    if limit is not None:
        ranked = ranked[:limit]
    coverages = oracle.coverage_many(ranked)
    rows = []
    for pattern, coverage in zip(ranked, coverages):
        rows.append(
            (
                str(pattern),
                pattern.level,
                int(coverage),
                pattern.describe(dataset.schema),
            )
        )
    header = (
        f"{len(result)} maximal uncovered pattern(s) at τ={result.threshold} "
        f"(showing {len(rows)})\n"
    )
    return header + format_table(["pattern", "level", "coverage", "meaning"], rows)


def enhancement_report(
    dataset: Dataset,
    result: EnhancementResult,
) -> str:
    """Tabulate an acquisition plan: combination, generalized pattern."""
    rows = []
    for combo, general in zip(result.combinations, result.generalized):
        rendered = ", ".join(
            f"{dataset.schema.names[i]}={dataset.schema.value_label(i, v)}"
            for i, v in enumerate(combo)
        )
        rows.append((str(general), rendered))
    header = (
        f"Acquisition plan: {len(result.combinations)} combination(s) to hit "
        f"{result.targets} target pattern(s)\n"
    )
    body = format_table(["collect any of", "example tuple"], rows)
    if result.unhittable:
        body += (
            f"\nWARNING: {len(result.unhittable)} target(s) ruled out by the "
            f"validation oracle: "
            + ", ".join(str(p) for p in result.unhittable[:10])
        )
    return header + body
