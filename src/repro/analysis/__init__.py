"""Analysis tooling: the nutritional-label coverage widget, human-readable
reports, and threshold-selection helpers.
"""

from repro.analysis.diff import CoverageDiff, coverage_diff
from repro.analysis.nutrition import CoverageLabel, coverage_label
from repro.analysis.report import mup_report, enhancement_report
from repro.analysis.thresholds import threshold_sweep, suggest_threshold

__all__ = [
    "CoverageDiff",
    "coverage_diff",
    "CoverageLabel",
    "coverage_label",
    "mup_report",
    "enhancement_report",
    "threshold_sweep",
    "suggest_threshold",
]
