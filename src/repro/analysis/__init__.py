"""Analysis tooling: the nutritional-label coverage widget, human-readable
reports, and threshold-selection helpers.
"""

from repro.analysis.diff import CoverageDiff, coverage_diff
from repro.analysis.hierarchy import (
    BucketSweepPoint,
    BucketSweepResult,
    HierarchicalMupResult,
    HierarchyLevel,
    HierarchyStack,
    bucketize_sweep,
    bucketized_dataset,
    find_mups_hierarchical,
)
from repro.analysis.nutrition import CoverageLabel, coverage_label
from repro.analysis.report import mup_report, enhancement_report
from repro.analysis.sweep import (
    MupTransition,
    SensitivityReport,
    SweepPoint,
    SweepResult,
    parse_tau_range,
    sweep_mups,
    threshold_sensitivity,
)
from repro.analysis.thresholds import threshold_sweep, suggest_threshold

__all__ = [
    "CoverageDiff",
    "coverage_diff",
    "BucketSweepPoint",
    "BucketSweepResult",
    "HierarchicalMupResult",
    "HierarchyLevel",
    "HierarchyStack",
    "bucketize_sweep",
    "bucketized_dataset",
    "find_mups_hierarchical",
    "CoverageLabel",
    "coverage_label",
    "mup_report",
    "enhancement_report",
    "MupTransition",
    "SensitivityReport",
    "SweepPoint",
    "SweepResult",
    "parse_tau_range",
    "sweep_mups",
    "threshold_sensitivity",
    "threshold_sweep",
    "suggest_threshold",
]
