"""Amortized threshold sweep: MUP sets for an entire τ range in one pass.

Running :func:`~repro.core.mups.find_mups` once per threshold repeats
almost all of its work: coverage counts are a pure function of the dataset
— τ only enters as a *comparison* against them.  A pattern ``P`` (with at
least one parent) is a MUP at exactly the thresholds in the half-open
interval

    ``cov(P) < τ ≤ min over parents Q of cov(Q)``

(the root, having no parents, is a MUP iff ``τ > cov(root) = n``).  So one
level-wise traversal that records, per pattern, its coverage and its
minimum parent coverage classifies *every* τ at once; the per-pattern
interval endpoints are the τ* breakpoints where the pattern enters and
leaves the MUP frontier.

The traversal counts the pattern graph level by level (apriori-style,
each pattern generated exactly once from its rightmost-deterministic
parent) and prunes with the *smallest* queried threshold: a pattern whose
coverage falls below ``τ_min`` is uncovered at every queried τ, so no
descendant can have all parents covered at any of them — the subtree is
dead for the whole range.  Each surviving pattern is counted once via the
batched, memoized :meth:`CoverageOracle.coverage_many
<repro.core.coverage.CoverageOracle.coverage_many>`, and attribute-subset
projections reuse the same engine (a projected pattern is just a full-width
pattern with ``X`` on the excluded attributes) and the same count memo.

On top of the sweep, :func:`threshold_sensitivity` builds a
:class:`SensitivityReport`: appear/disappear diffs between consecutive
queried thresholds, per-pattern τ* breakpoints, and (optionally) bootstrap
support — the fraction of resampled replicates in which each MUP survives.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro._util import SearchStats, Stopwatch
from repro.core.coverage import CoverageOracle
from repro.core.engine import AUTO, EngineConfig, EngineSpec
from repro.core.mups.base import MupResult
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset
from repro.data.sampling import bootstrap_resample
from repro.exceptions import ReproError

__all__ = [
    "SweepPoint",
    "SweepResult",
    "MupTransition",
    "SensitivityReport",
    "sweep_mups",
    "threshold_sensitivity",
    "parse_tau_range",
]


# ----------------------------------------------------------------------
# result types
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class SweepPoint:
    """One pattern on the sweep frontier with its MUP interval.

    Attributes:
        pattern: the pattern.
        coverage: ``cov(P)``.
        min_parent_coverage: smallest coverage over the parents of ``P``;
            ``None`` for the root, whose interval is unbounded above.
    """

    pattern: Pattern
    coverage: int
    min_parent_coverage: Optional[int]

    @property
    def appears_at(self) -> int:
        """Smallest τ at which the pattern is a MUP: ``cov(P) + 1``."""
        return self.coverage + 1

    @property
    def disappears_above(self) -> Optional[int]:
        """Largest τ at which the pattern is a MUP (``None`` = never stops).

        Above this τ some parent is uncovered too, so the MUP frontier
        moves *up* past this pattern.
        """
        return self.min_parent_coverage

    def is_mup_at(self, threshold: int) -> bool:
        """Interval membership: ``cov(P) < τ ≤ min_parent_coverage``."""
        if threshold <= self.coverage:
            return False
        return (
            self.min_parent_coverage is None
            or threshold <= self.min_parent_coverage
        )


@dataclass(frozen=True)
class SweepResult:
    """Everything one amortized traversal learned about a τ range.

    ``mups_at`` is exact for **any** integer τ with
    ``min(thresholds) ≤ τ ≤ max(thresholds)`` — the frontier retains every
    pattern whose MUP interval intersects the closed range, not only the
    explicitly queried settings.

    Attributes:
        thresholds: the queried τ settings, sorted and deduplicated.
        frontier: the retained :class:`SweepPoint` rows, sorted by pattern.
        stats: traversal counters (coverage evaluations are *distinct*
            patterns counted — the amortized work, not #thresholds × work).
        d: dataset dimensionality (for Definition 6 reporting).
        attributes: the attribute subset swept, ``None`` = all.
        max_level: the level cap, when one was applied.
    """

    thresholds: Tuple[int, ...]
    frontier: Tuple[SweepPoint, ...]
    stats: SearchStats
    d: int
    attributes: Optional[Tuple[int, ...]] = None
    max_level: Optional[int] = None

    def __post_init__(self) -> None:
        object.__setattr__(
            self,
            "frontier",
            tuple(sorted(self.frontier, key=lambda p: p.pattern)),
        )

    @property
    def tau_min(self) -> int:
        return self.thresholds[0]

    @property
    def tau_max(self) -> int:
        return self.thresholds[-1]

    def mups_at(self, threshold: int) -> MupResult:
        """The exact MUP set at ``threshold`` (any integer in range).

        Bit-identical to running :func:`~repro.core.mups.find_mups` at the
        same τ: the frontier intervals are a lossless classification.
        """
        threshold = int(threshold)
        if not self.tau_min <= threshold <= self.tau_max:
            raise ReproError(
                f"threshold {threshold} outside the swept range "
                f"[{self.tau_min}, {self.tau_max}]"
            )
        return MupResult(
            mups=tuple(
                point.pattern
                for point in self.frontier
                if point.is_mup_at(threshold)
            ),
            threshold=threshold,
            stats=self.stats,
            max_level=self.max_level,
        )

    def mup_counts(self) -> Dict[int, int]:
        """MUP count per queried threshold (the τ-vs-|MUPs| curve)."""
        return {tau: len(self.mups_at(tau)) for tau in self.thresholds}

    def breakpoints(self) -> Tuple["MupTransition", ...]:
        """Per-pattern τ* transitions, clipped to the swept range."""
        return tuple(
            MupTransition(
                pattern=point.pattern,
                appears_at=max(point.appears_at, self.tau_min),
                disappears_above=point.disappears_above,
            )
            for point in self.frontier
        )


@dataclass(frozen=True)
class MupTransition:
    """τ* breakpoints of one pattern.

    Attributes:
        pattern: the pattern.
        appears_at: smallest swept τ at which it is a MUP.
        disappears_above: largest τ at which it remains one (``None`` =
            it stays a MUP for every larger τ).
    """

    pattern: Pattern
    appears_at: int
    disappears_above: Optional[int]


@dataclass(frozen=True)
class SensitivityReport:
    """How the MUP frontier responds to Δτ and to resampling noise.

    Attributes:
        thresholds: the queried τ settings (sorted, deduplicated).
        counts: MUP count per queried τ.
        appeared: per queried τ (after the first), MUPs present there but
            not at the previous queried τ.
        disappeared: per queried τ, MUPs of the previous queried τ that are
            no longer MUPs (the frontier moved up past them).
        transitions: per-pattern τ* breakpoints for the whole frontier.
        bootstrap_replicates: number of bootstrap resamples taken (0 =
            no bootstrap pass).
        support: for each queried τ, for each base-sweep MUP at that τ, the
            fraction of replicates in which it is still a MUP; empty when
            ``bootstrap_replicates == 0``.
        novel_rate: for each queried τ, the mean number of replicate MUPs
            *not* present in the base sweep — how much of the frontier is
            sampling artifact.
        seed: base RNG seed of the bootstrap pass.
    """

    thresholds: Tuple[int, ...]
    counts: Dict[int, int]
    appeared: Dict[int, Tuple[Pattern, ...]]
    disappeared: Dict[int, Tuple[Pattern, ...]]
    transitions: Tuple[MupTransition, ...]
    bootstrap_replicates: int = 0
    support: Dict[int, Dict[Pattern, float]] = field(default_factory=dict)
    novel_rate: Dict[int, float] = field(default_factory=dict)
    seed: int = 0

    def stable_mups(self, threshold: int, min_support: float = 1.0) -> Tuple[Pattern, ...]:
        """Base MUPs at ``threshold`` with bootstrap support ≥ ``min_support``."""
        table = self.support.get(int(threshold))
        if table is None:
            raise ReproError(
                f"no bootstrap support recorded for threshold {threshold}"
            )
        return tuple(
            sorted(p for p, s in table.items() if s >= min_support)
        )

    def as_dict(self) -> dict:
        """JSON-ready form (patterns rendered in the paper's ``1XX0`` style)."""
        return {
            "thresholds": list(self.thresholds),
            "counts": {str(t): c for t, c in self.counts.items()},
            "appeared": {
                str(t): [str(p) for p in patterns]
                for t, patterns in self.appeared.items()
            },
            "disappeared": {
                str(t): [str(p) for p in patterns]
                for t, patterns in self.disappeared.items()
            },
            "transitions": [
                {
                    "pattern": str(t.pattern),
                    "appears_at": t.appears_at,
                    "disappears_above": t.disappears_above,
                }
                for t in self.transitions
            ],
            "bootstrap_replicates": self.bootstrap_replicates,
            "support": {
                str(t): {str(p): s for p, s in sorted(table.items())}
                for t, table in self.support.items()
            },
            "novel_rate": {str(t): r for t, r in self.novel_rate.items()},
            "seed": self.seed,
        }


# ----------------------------------------------------------------------
# input normalization
# ----------------------------------------------------------------------
def parse_tau_range(text: str) -> Tuple[int, ...]:
    """Parse a CLI τ-range: ``"5"``, ``"2:10"``, or ``"2:10:2"``.

    ``lo:hi`` is inclusive on both ends; the optional third field is the
    step.  Comma lists (``"2,5,9"``) are accepted too.
    """
    text = text.strip()
    if "," in text:
        try:
            return _normalize_thresholds([int(p) for p in text.split(",")])
        except ValueError:
            raise ReproError(f"invalid τ list {text!r}")
    parts = text.split(":")
    if len(parts) > 3:
        raise ReproError(f"invalid τ range {text!r}; use lo:hi or lo:hi:step")
    try:
        numbers = [int(p) for p in parts]
    except ValueError:
        raise ReproError(f"invalid τ range {text!r}; use lo:hi or lo:hi:step")
    if len(numbers) == 1:
        return _normalize_thresholds(numbers)
    lo, hi = numbers[0], numbers[1]
    step = numbers[2] if len(numbers) == 3 else 1
    if step < 1:
        raise ReproError(f"τ range step must be >= 1, got {step}")
    if hi < lo:
        raise ReproError(f"empty τ range {text!r} (hi < lo)")
    return _normalize_thresholds(range(lo, hi + 1, step))


def _normalize_thresholds(thresholds: Sequence[int]) -> Tuple[int, ...]:
    values = sorted({int(t) for t in thresholds})
    if not values:
        raise ReproError("need at least one threshold")
    if values[0] < 1:
        raise ReproError(f"thresholds must be >= 1, got {values[0]}")
    return tuple(values)


def _normalize_attributes(
    attributes: Optional[Sequence[int]], d: int
) -> Optional[Tuple[int, ...]]:
    if attributes is None:
        return None
    attrs = sorted({int(a) for a in attributes})
    if not attrs:
        raise ReproError("attribute subset must name at least one attribute")
    if attrs[0] < 0 or attrs[-1] >= d:
        raise ReproError(
            f"attribute subset {attrs} out of range for d={d}"
        )
    return tuple(attrs)


def _plan_sweep_engine(dataset: Dataset, engine: EngineSpec) -> EngineSpec:
    """Resolve ``"auto"`` specs with the planner's ``"sweep"`` query shape."""
    if isinstance(engine, str) and engine == AUTO:
        engine = EngineConfig(backend=AUTO)
    if isinstance(engine, EngineConfig) and engine.is_auto:
        from repro.core.engine.planner import plan_engine

        return plan_engine(dataset, engine, query_shape="sweep").config
    return engine


# ----------------------------------------------------------------------
# the amortized traversal
# ----------------------------------------------------------------------
def sweep_mups(
    dataset: Dataset,
    thresholds: Sequence[int],
    attributes: Optional[Sequence[int]] = None,
    max_level: Optional[int] = None,
    oracle: Optional[CoverageOracle] = None,
    engine: EngineSpec = None,
    memo: Optional[Dict[Tuple[int, ...], int]] = None,
) -> SweepResult:
    """One amortized pass classifying every τ in ``[min, max]`` at once.

    Args:
        dataset: the dataset to assess.
        thresholds: the τ settings of interest (deduplicated and sorted;
            the result answers any integer τ between the extremes).
        attributes: optional attribute subset — sweep the pattern graph
            projected onto these attributes (patterns keep full width,
            with ``X`` on the excluded attributes) while sharing the same
            engine and count memo as the full-width sweep.
        max_level: only consider patterns at level ≤ this cap.
        oracle: optionally reuse a prebuilt coverage oracle.
        engine: engine selection when no oracle is given (``"auto"``
            consults the planner with the ``"sweep"`` query shape).
        memo: optional ``pattern.values -> count`` reuse table, shared
            across calls on the *same dataset* (projections, repeated
            sweeps); pass a plain dict and keep it per-dataset.

    Returns:
        A :class:`SweepResult` whose ``mups_at(τ)`` is bit-identical to
        :func:`~repro.core.mups.find_mups` at every τ in the swept range.
    """
    thresholds = _normalize_thresholds(thresholds)
    attrs = _normalize_attributes(attributes, dataset.d)
    active = attrs if attrs is not None else tuple(range(dataset.d))
    if max_level is not None and max_level < 0:
        raise ReproError(f"max_level must be >= 0, got {max_level}")
    if oracle is None:
        oracle = CoverageOracle(dataset, _plan_sweep_engine(dataset, engine))
    if memo is None:
        memo = {}

    watch = Stopwatch()
    evaluations_before = oracle.evaluations
    tau_min, tau_max = thresholds[0], thresholds[-1]
    cardinalities = dataset.cardinalities
    depth = len(active) if max_level is None else min(max_level, len(active))

    frontier: List[SweepPoint] = []
    nodes_generated = 1  # the root
    pruned = 0

    root = Pattern.root(dataset.d)
    root_cov = int(oracle.coverage_many([root], memo=memo)[0])
    _retain(frontier, root, root_cov, None, tau_min, tau_max)

    # Level tables: pattern.values -> coverage, for every pattern whose
    # strict ancestors are all covered at τ_min (exactly the candidates
    # whose MUP interval can intersect the swept range, plus the parent
    # counts the next level's intervals need).
    table: Dict[Tuple[int, ...], int] = {root.values: root_cov}
    # Expandable = in the table AND itself covered at τ_min.
    expandable: List[Pattern] = [root] if root_cov >= tau_min else []

    for _level in range(depth):
        if not expandable:
            break
        candidates: List[Pattern] = []
        min_parent: List[int] = []
        seen: set = set()
        for pattern in expandable:
            start = pattern.rightmost_deterministic()
            for attribute in active:
                if attribute <= start:
                    continue
                for value in range(cardinalities[attribute]):
                    child = pattern.with_value(attribute, value)
                    nodes_generated += 1
                    # Survival: every parent present in the previous
                    # level's table with coverage ≥ τ_min.  An absent or
                    # under-covered parent is uncovered at every queried
                    # τ, killing the child (and its subtree) as a MUP
                    # candidate for the whole range.
                    parent_floor: Optional[int] = None
                    alive = True
                    for parent in child.parents():
                        cov = table.get(parent.values)
                        if cov is None or cov < tau_min:
                            alive = False
                            break
                        if parent_floor is None or cov < parent_floor:
                            parent_floor = cov
                    if not alive:
                        pruned += 1
                        continue
                    if child.values in seen:  # pragma: no cover - guard
                        continue
                    seen.add(child.values)
                    candidates.append(child)
                    min_parent.append(parent_floor)
        if not candidates:
            break
        counts = oracle.coverage_many(candidates, memo=memo)
        table = {}
        expandable = []
        for child, floor, cov in zip(candidates, min_parent, counts):
            cov = int(cov)
            table[child.values] = cov
            _retain(frontier, child, cov, floor, tau_min, tau_max)
            if cov >= tau_min:
                expandable.append(child)

    stats = SearchStats(
        nodes_generated=nodes_generated,
        coverage_evaluations=oracle.evaluations - evaluations_before,
        pruned=pruned,
        seconds=watch.elapsed(),
    )
    return SweepResult(
        thresholds=thresholds,
        frontier=tuple(frontier),
        stats=stats,
        d=dataset.d,
        attributes=attrs,
        max_level=max_level,
    )


def _retain(
    frontier: List[SweepPoint],
    pattern: Pattern,
    coverage: int,
    min_parent: Optional[int],
    tau_min: int,
    tau_max: int,
) -> None:
    """Keep the pattern iff its MUP interval intersects ``[τ_min, τ_max]``."""
    lo = max(coverage + 1, tau_min)
    hi = tau_max if min_parent is None else min(min_parent, tau_max)
    if lo <= hi:
        frontier.append(SweepPoint(pattern, coverage, min_parent))


# ----------------------------------------------------------------------
# sensitivity
# ----------------------------------------------------------------------
def threshold_sensitivity(
    dataset: Dataset,
    thresholds: Sequence[int],
    attributes: Optional[Sequence[int]] = None,
    max_level: Optional[int] = None,
    oracle: Optional[CoverageOracle] = None,
    engine: EngineSpec = None,
    bootstrap: int = 0,
    seed: int = 0,
    sweep: Optional[SweepResult] = None,
) -> SensitivityReport:
    """Diff the MUP frontier across Δτ and across bootstrap resamples.

    Args:
        dataset: the dataset to assess.
        thresholds: queried τ settings.
        attributes: optional attribute-subset projection.
        max_level: optional level cap.
        oracle: optionally reuse a prebuilt oracle for the base sweep.
        engine: engine selection when no oracle is given.
        bootstrap: number of bootstrap replicates (0 = skip the
            resampling pass).
        seed: base seed; replicate ``b`` uses the derived stream
            ``[seed, b]``, so reports are deterministic in ``seed``.
        sweep: optionally reuse an existing base :class:`SweepResult`
            (must match ``thresholds``/``attributes``/``max_level``).

    Returns:
        A :class:`SensitivityReport`.
    """
    if bootstrap < 0:
        raise ReproError(f"bootstrap must be >= 0, got {bootstrap}")
    if sweep is None:
        sweep = sweep_mups(
            dataset,
            thresholds,
            attributes=attributes,
            max_level=max_level,
            oracle=oracle,
            engine=engine,
        )
    base_sets = {tau: sweep.mups_at(tau).as_set() for tau in sweep.thresholds}

    appeared: Dict[int, Tuple[Pattern, ...]] = {}
    disappeared: Dict[int, Tuple[Pattern, ...]] = {}
    for previous, current in zip(sweep.thresholds, sweep.thresholds[1:]):
        appeared[current] = tuple(
            sorted(base_sets[current] - base_sets[previous])
        )
        disappeared[current] = tuple(
            sorted(base_sets[previous] - base_sets[current])
        )

    support: Dict[int, Dict[Pattern, float]] = {}
    novel_rate: Dict[int, float] = {}
    if bootstrap > 0:
        hits: Dict[int, Dict[Pattern, int]] = {
            tau: {p: 0 for p in base_sets[tau]} for tau in sweep.thresholds
        }
        novel: Dict[int, int] = {tau: 0 for tau in sweep.thresholds}
        for replicate in range(bootstrap):
            resampled = bootstrap_resample(dataset, seed=[seed, replicate])
            replica = sweep_mups(
                resampled,
                sweep.thresholds,
                attributes=attributes,
                max_level=max_level,
            )
            for tau in sweep.thresholds:
                replica_set = replica.mups_at(tau).as_set()
                for pattern in replica_set & base_sets[tau]:
                    hits[tau][pattern] += 1
                novel[tau] += len(replica_set - base_sets[tau])
        support = {
            tau: {p: count / bootstrap for p, count in table.items()}
            for tau, table in hits.items()
        }
        novel_rate = {tau: novel[tau] / bootstrap for tau in sweep.thresholds}

    return SensitivityReport(
        thresholds=sweep.thresholds,
        counts=sweep.mup_counts(),
        appeared=appeared,
        disappeared=disappeared,
        transitions=sweep.breakpoints(),
        bootstrap_replicates=bootstrap,
        support=support,
        novel_rate=novel_rate,
        seed=seed,
    )
