"""Threshold (τ) selection helpers (§V-B2, and the paper's future work).

The paper picks τ from statistical rules of thumb (20–50 samples per minor
subgroup; the Figure 11 accuracy curve flattens around 40).  These helpers
support that workflow: sweep τ and watch the MUP count, and locate the knee
of a subgroup-accuracy curve.

``threshold_sweep`` is backed by the amortized engine in
:mod:`repro.analysis.sweep`: one traversal counts each pattern once and
classifies every queried τ from its coverage interval, instead of rerunning
MUP identification per threshold.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.analysis.sweep import sweep_mups
from repro.core.engine import EngineSpec
from repro.core.mups.base import ALGORITHMS
from repro.data.dataset import Dataset
from repro.exceptions import ReproError


@dataclass(frozen=True)
class ThresholdSweepRow:
    """One τ setting of a sweep.

    Attributes:
        threshold: absolute τ.
        mup_count: number of MUPs at that τ.
        max_covered_level: Definition 6 at that τ.
    """

    threshold: int
    mup_count: int
    max_covered_level: int


def threshold_sweep(
    dataset: Dataset,
    thresholds: Sequence[int],
    algorithm: str = "deepdiver",
    engine: EngineSpec = None,
) -> List[ThresholdSweepRow]:
    """MUP counts across a list of thresholds, in one amortized pass.

    ``algorithm`` is kept for interface stability and validated against
    the registry, but the rows come from a single
    :func:`~repro.analysis.sweep.sweep_mups` traversal (bit-identical MUP
    sets to any registered algorithm, counted once for the whole range).
    """
    if not thresholds:
        raise ReproError("need at least one threshold")
    if algorithm not in ALGORITHMS:
        raise ReproError(
            f"unknown algorithm {algorithm!r}; available: {sorted(ALGORITHMS)}"
        )
    sweep = sweep_mups(dataset, thresholds, engine=engine)
    rows = []
    for threshold in thresholds:
        result = sweep.mups_at(int(threshold))
        rows.append(
            ThresholdSweepRow(
                threshold=int(threshold),
                mup_count=len(result),
                max_covered_level=result.max_covered_level(dataset.d),
            )
        )
    return rows


def suggest_threshold(
    counts: Sequence[int],
    scores: Sequence[float],
) -> int:
    """Locate the knee of an accuracy-vs-samples curve.

    Given per-setting subgroup sample counts and the model's subgroup scores
    (Figure 11's x and y), return the count after which the marginal score
    improvement drops below half of the largest step — the paper reads
    "around 40" off this curve and notes it matches the statistics rule of
    thumb of ~30.
    """
    if len(counts) != len(scores) or len(counts) < 3:
        raise ReproError("need at least 3 aligned (count, score) points")
    steps: List[Tuple[float, int]] = []
    for i in range(1, len(counts)):
        delta_x = counts[i] - counts[i - 1]
        if delta_x <= 0:
            raise ReproError("counts must be strictly increasing")
        steps.append(((scores[i] - scores[i - 1]) / delta_x, counts[i]))
    largest = max(slope for slope, _ in steps)
    if largest <= 0:
        # No improvement anywhere: the smallest count suffices.
        return int(counts[1])
    for slope, count in steps:
        if slope < largest / 2:
            return int(count)
    return int(counts[-1])
