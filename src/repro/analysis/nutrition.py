"""The coverage widget for a dataset "nutritional label" (§I).

The paper proposes surfacing lack-of-coverage information as a widget in a
dataset's nutritional label (Yang et al., SIGMOD 2018).  This module distils
a MUP identification run into the summary a label would print: MUP counts by
level, the maximum covered level, and the most general (most alarming)
uncovered regions rendered with human-readable attribute values.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from repro.core.engine import EngineSpec
from repro.core.mups.base import MupResult, find_mups
from repro.core.pattern import Pattern
from repro.data.dataset import Dataset


@dataclass(frozen=True)
class CoverageLabel:
    """The coverage section of a dataset nutritional label.

    Attributes:
        n: dataset size.
        d: number of attributes of interest.
        threshold: coverage threshold used.
        mup_count: number of maximal uncovered patterns.
        level_histogram: MUP count per level.
        max_covered_level: Definition 6 for the dataset.
        headline_gaps: the most general MUPs, rendered human-readably.
    """

    n: int
    d: int
    threshold: int
    mup_count: int
    level_histogram: Dict[int, int]
    max_covered_level: int
    headline_gaps: Tuple[str, ...]

    def render(self) -> str:
        """Plain-text rendering of the widget."""
        lines = [
            "Coverage",
            f"  rows analysed        {self.n}",
            f"  attributes           {self.d}",
            f"  threshold (τ)        {self.threshold}",
            f"  uncovered regions    {self.mup_count} maximal pattern(s)",
            f"  max covered level    {self.max_covered_level} of {self.d}",
        ]
        if self.level_histogram:
            histogram = ", ".join(
                f"L{level}:{count}" for level, count in self.level_histogram.items()
            )
            lines.append(f"  MUPs by level        {histogram}")
        if self.headline_gaps:
            lines.append("  largest gaps:")
            for gap in self.headline_gaps:
                lines.append(f"    - {gap}")
        return "\n".join(lines)


def coverage_label(
    dataset: Dataset,
    threshold: int,
    algorithm: str = "deepdiver",
    headline_limit: int = 5,
    max_level: Optional[int] = None,
    result: Optional[MupResult] = None,
    engine: EngineSpec = None,
) -> CoverageLabel:
    """Compute the coverage widget for ``dataset``.

    Args:
        dataset: the dataset to label.
        threshold: coverage threshold ``τ``.
        algorithm: MUP identification algorithm to run.
        headline_limit: how many of the most general MUPs to feature.
        max_level: optionally restrict the search depth (large schemas).
        result: reuse an existing MUP identification result.
        engine: coverage-engine spec for the identification run (name,
            ``"auto"``, :class:`~repro.core.engine.EngineConfig`, class,
            or instance).
    """
    if result is None:
        result = find_mups(
            dataset,
            threshold=threshold,
            algorithm=algorithm,
            max_level=max_level,
            engine=engine,
        )
    ranked: List[Pattern] = sorted(result.mups, key=lambda p: (p.level, p.values))
    headlines = tuple(
        pattern.describe(dataset.schema) for pattern in ranked[:headline_limit]
    )
    return CoverageLabel(
        n=dataset.n,
        d=dataset.d,
        threshold=result.threshold,
        mup_count=len(result),
        level_histogram=result.level_histogram(),
        max_covered_level=result.max_covered_level(dataset.d),
        headline_gaps=headlines,
    )
