"""Figure 12 — MUP identification vs threshold rate (AirBnB).

Paper setting: n=1M, d=15, τ rate from 1e-6 to 1e-2, plus the APRIORI
adaptation (which only finishes quickly at one setting).  Paper shape:
PATTERN-BREAKER gets *faster* as the rate grows (MUPs move up the graph),
PATTERN-COMBINER gets *slower*, the two cross near 1e-4..1e-3, and
DEEPDIVER is as fast as the better of the two everywhere.  APRIORI is not
competitive.
"""

import pytest

import _config as config
from _harness import emit, fmt_rate, timed

from repro.core.coverage import CoverageOracle
from repro.core.mups import apriori_mups, deepdiver, pattern_breaker, pattern_combiner

ALGORITHMS = [
    ("PATTERN-BREAKER", pattern_breaker),
    ("PATTERN-COMBINER", pattern_combiner),
    ("DEEPDIVER", deepdiver),
]


def test_fig12_series(benchmark, airbnb):
    oracle = CoverageOracle(airbnb)
    rows = []
    timings = {}

    def sweep():
        for rate in config.THRESHOLD_RATES:
            tau = oracle.threshold_from_rate(rate)
            mups = None
            for name, fn in ALGORITHMS:
                result, seconds = timed(fn, airbnb, tau)
                timings[(name, rate)] = seconds
                if mups is None:
                    mups = result.as_set()
                else:
                    assert result.as_set() == mups, f"{name} disagrees at rate {rate}"
                rows.append((fmt_rate(rate), tau, name, f"{seconds:.2f}", len(result)))
            if rate == config.APRIORI_RATE:
                result, seconds = timed(apriori_mups, airbnb, tau)
                assert result.as_set() == mups
                rows.append(
                    (fmt_rate(rate), tau, "APRIORI", f"{seconds:.2f}", len(result))
                )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        f"Fig.12 MUP identification vs threshold (AirBnB n={airbnb.n} d={airbnb.d})",
        ["rate", "tau", "algorithm", "seconds", "mups"],
        rows,
    )
    # Paper shape: breaker slows as the rate drops, combiner slows as it
    # rises (compare the extreme rates).
    low, high = min(config.THRESHOLD_RATES), max(config.THRESHOLD_RATES)
    if low != high:
        assert timings[("PATTERN-BREAKER", high)] <= timings[("PATTERN-BREAKER", low)] * 1.5
        assert timings[("PATTERN-COMBINER", low)] <= timings[("PATTERN-COMBINER", high)] * 1.5


@pytest.mark.parametrize("name,fn", ALGORITHMS, ids=[a for a, _ in ALGORITHMS])
def test_fig12_benchmark(benchmark, airbnb, name, fn):
    # One representative rate per algorithm keeps pytest-benchmark's timing
    # rows cheap; the full sweep lives in test_fig12_series.
    rate = config.THRESHOLD_RATES[-1]
    oracle = CoverageOracle(airbnb)
    tau = oracle.threshold_from_rate(rate)
    result = benchmark.pedantic(fn, args=(airbnb, tau), rounds=1, iterations=1)
    assert result.threshold == tau
