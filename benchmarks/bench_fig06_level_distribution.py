"""Figure 6 — distribution of MUP levels (AirBnB, n=1000, d=13, τ=50).

The paper reports several thousand MUPs in a bell-shaped distribution
peaking at levels 5-6, with a single MUP at level 1 and under forty at
level 2 — the argument for targeting low levels in coverage enhancement.
"""

import _config as config
from _harness import emit, timed

from repro.core.mups import deepdiver
from repro.data.airbnb import load_airbnb


def _run():
    dataset = load_airbnb(n=config.FIG6_N, d=config.FIG6_D)
    result, seconds = timed(deepdiver, dataset, config.FIG6_TAU)
    return result, seconds


def test_fig06_series(benchmark):
    result, seconds = benchmark.pedantic(_run, rounds=1, iterations=1)
    histogram = result.level_histogram()
    emit(
        "Fig.6 MUP level distribution (AirBnB n=1000 d=13 tau=50)",
        ["level", "mups"],
        [(level, histogram.get(level, 0)) for level in range(config.FIG6_D + 1)],
    )
    assert len(result) > 0
    # Bell shape: the peak sits strictly inside the level range and the
    # shallow levels carry far fewer MUPs than the peak.
    peak_level = max(histogram, key=histogram.get)
    assert 2 < peak_level < config.FIG6_D
    shallow = histogram.get(1, 0) + histogram.get(2, 0)
    assert shallow < histogram[peak_level]


def test_fig06_identification_benchmark(benchmark):
    dataset = load_airbnb(n=config.FIG6_N, d=config.FIG6_D)
    result = benchmark(deepdiver, dataset, config.FIG6_TAU)
    assert len(result) > 0
