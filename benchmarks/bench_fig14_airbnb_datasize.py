"""Figure 14 — MUP identification vs dataset size (AirBnB).

Paper setting: d=15, τ rate 0.1%, n from 10K to 1M.  Paper shape: all
three algorithms are only mildly affected by n — the work is driven by the
number of patterns, not tuples; PATTERN-COMBINER touches the raw data only
for the bottom level, and the inverted indices bound the effect for the
other two.
"""

import pytest

import _config as config
from _harness import emit, timed

from repro.core.coverage import CoverageOracle
from repro.core.mups import deepdiver, pattern_breaker, pattern_combiner
from repro.data.airbnb import load_airbnb

ALGORITHMS = [
    ("PATTERN-BREAKER", pattern_breaker),
    ("PATTERN-COMBINER", pattern_combiner),
    ("DEEPDIVER", deepdiver),
]


def test_fig14_series(benchmark):
    rows = []
    seconds_by_algo = {name: [] for name, _ in ALGORITHMS}

    def sweep():
        for n in config.DATASIZE_SWEEP:
            dataset = load_airbnb(n=n, d=config.AIRBNB_D)
            oracle = CoverageOracle(dataset)
            tau = oracle.threshold_from_rate(config.DATASIZE_RATE)
            reference = None
            for name, fn in ALGORITHMS:
                result, seconds = timed(fn, dataset, tau)
                if reference is None:
                    reference = result.as_set()
                else:
                    assert result.as_set() == reference
                seconds_by_algo[name].append(seconds)
                rows.append((n, tau, name, f"{seconds:.2f}", len(result)))

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        f"Fig.14 MUP identification vs data size (AirBnB d={config.AIRBNB_D}, "
        f"rate={config.DATASIZE_RATE:g})",
        ["n", "tau", "algorithm", "seconds", "mups"],
        rows,
    )
    # Paper shape: runtime grows far slower than n (sublinear effect).
    growth = max(config.DATASIZE_SWEEP) / min(config.DATASIZE_SWEEP)
    for name, series in seconds_by_algo.items():
        slowest, fastest = max(series), max(min(series), 1e-3)
        assert slowest / fastest < growth, f"{name} scaled with n"


@pytest.mark.parametrize("n", [max(config.DATASIZE_SWEEP)])
def test_fig14_benchmark(benchmark, n):
    dataset = load_airbnb(n=n, d=config.AIRBNB_D)
    oracle = CoverageOracle(dataset)
    tau = oracle.threshold_from_rate(config.DATASIZE_RATE)
    result = benchmark.pedantic(deepdiver, args=(dataset, tau), rounds=1, iterations=1)
    assert result.threshold == tau
