"""§V-B3 — coverage enhancement quality with the validation oracle.

Paper setup: the COMPAS MUPs at τ=10, target level λ=2, and two expert
rules — (a) no "unknown" marital status, (b) under-20s must be single.  The
paper's run suggests five collection recipes such as {over 60, other races,
widowed} and {20-40, Hispanic, widowed}.  We print the acquisition plan and
assert its contract: every suggested combination is valid, every hittable
target is hit, and the plan is no larger than the target count.
"""

import _config as config
from _harness import emit

from repro.core.enhancement import ValidationOracle, greedy_cover, uncovered_at_level
from repro.core.mups import deepdiver
from repro.core.pattern_graph import PatternSpace


def _oracle(schema):
    return ValidationOracle.from_named_rules(
        schema,
        [
            {"marital_status": ["unknown"]},
            {
                "age": ["<20"],
                "marital_status": [
                    "married",
                    "separated",
                    "widowed",
                    "significant-other",
                    "divorced",
                ],
            },
        ],
    )


def _plan(compas):
    mups = deepdiver(compas, config.COMPAS_THRESHOLD).mups
    space = PatternSpace.for_dataset(compas)
    targets = uncovered_at_level(mups, space, 2)
    oracle = _oracle(compas.schema)
    plan = greedy_cover(targets, space, oracle)
    return plan, targets, oracle, space


def test_vb3_acquisition_plan(benchmark, compas):
    plan, targets, oracle, _space = benchmark.pedantic(
        _plan, args=(compas,), rounds=1, iterations=1
    )
    emit(
        "Tab.V-B3 COMPAS acquisition plan (lambda=2, validation oracle)",
        ["collect any of", "example tuple"],
        [
            (
                str(general),
                ", ".join(
                    f"{compas.schema.names[i]}={compas.schema.value_label(i, v)}"
                    for i, v in enumerate(combo)
                    if general[i] != -1
                ),
            )
            for combo, general in zip(plan.combinations, plan.generalized)
        ],
    )
    # Contract mirrored from the paper: a handful of recipes (the paper
    # collected five), every suggestion valid, every hittable target hit.
    assert 1 <= len(plan.combinations) <= len(targets)
    for combo in plan.combinations:
        assert oracle.is_valid_values(combo)
    hit = set()
    for combo in plan.combinations:
        hit |= {t for t in targets if t.matches(combo)}
    assert hit | set(plan.unhittable) == set(targets)
    # Every unhittable target is genuinely invalid under the oracle.
    space = PatternSpace.for_dataset(compas)
    for target in plan.unhittable:
        assert all(
            not oracle.is_valid_values(c)
            for c in space.combinations_matching(target)
        )


def test_vb3_greedy_benchmark(benchmark, compas):
    mups = deepdiver(compas, config.COMPAS_THRESHOLD).mups
    space = PatternSpace.for_dataset(compas)
    targets = uncovered_at_level(mups, space, 2)
    oracle = _oracle(compas.schema)
    plan = benchmark(greedy_cover, targets, space, oracle)
    assert plan.targets == len(targets)
