"""Auto-planner benchmark: ``auto`` vs every hand-tuned backend.

Runs the smoke matrix — one workload per planner zone (dense / packed /
out-of-core-under-budget) — and times the same batched coverage workload
(match masks + ``count_many``) on every hand-tuned backend plus the
engine the ``auto`` planner picks.  The pin: **auto stays within 1.25× of
the best hand-tuned backend on every workload** (the planner may only pay
planning arithmetic, never a wrong-backend penalty).  Budgeted workloads
compare against budget-respecting hand-tuned configurations only — an
in-memory engine that ignores the budget is not a legal competitor.

Emits the canonical ``BENCH_planner.json`` via the shared writer.  Also
runnable standalone (the CI planner smoke job):

    python benchmarks/bench_planner.py --smoke
"""

import argparse
import sys
import tempfile

import _config as config
from _harness import emit_bench, measure_engines, random_patterns, timed

from repro.core.engine import AUTO, EngineConfig, plan_engine, resolve_engine
from repro.data.synthetic import random_categorical_dataset

#: The pin: auto may cost at most this factor over the best hand-tuned.
MAX_AUTO_RATIO = 1.25

N_MASKS = config.pick(256, 1024)


def smoke_matrix(spill_root, full=False):
    """The workloads, one per planner zone.

    Each entry: (name, dataset, requested EngineConfig, hand-tuned
    candidate configs).  Budgeted entries only admit budget-respecting
    competitors.
    """
    pick = (lambda smoke, big: big if full else smoke)
    tiny = random_categorical_dataset(
        pick(3_000, 30_000), (2, 3, 2), seed=7, skew=1.0
    )
    medium = random_categorical_dataset(
        pick(200_000, 1_000_000), (40, 30, 20, 12), seed=11, skew=0.3
    )
    # Roughly half the medium index: firmly out-of-core (steady eviction
    # traffic) without degenerating into per-query mmap churn, whose I/O
    # jitter would drown the backend comparison this bench pins.
    budget = 256 << 10
    in_memory = [
        EngineConfig(backend="dense", mask_cache_size=0),
        EngineConfig(backend="packed", mask_cache_size=0),
        EngineConfig(backend="sharded", shards=4, mask_cache_size=0),
    ]
    budgeted = [
        EngineConfig(
            backend="sharded",
            shards=shards,
            spill_dir=spill_root,
            max_resident_bytes=budget,
            mask_cache_size=0,
        )
        for shards in (4, 8)
    ]
    return [
        ("tiny-categorical", tiny, EngineConfig(backend=AUTO, mask_cache_size=0), in_memory),
        ("medium-skewed", medium, EngineConfig(backend=AUTO, mask_cache_size=0), in_memory),
        (
            "medium-budgeted",
            medium,
            EngineConfig(
                backend=AUTO,
                spill_dir=spill_root,
                max_resident_bytes=budget,
                mask_cache_size=0,
            ),
            budgeted,
        ),
    ]


def run(spill_root, full=False):
    rows = []
    payload = {"max_auto_ratio": MAX_AUTO_RATIO, "workloads": {}}
    for name, dataset, requested, candidates in smoke_matrix(spill_root, full):
        patterns = random_patterns(dataset, N_MASKS, seed=5)
        plan, plan_seconds = timed(plan_engine, dataset, requested)
        engines = [
            (candidate.describe(), resolve_engine(candidate, dataset))
            for candidate in candidates
        ]
        engines.append(("auto", resolve_engine(plan.config, dataset)))
        try:
            seconds, counts = measure_engines(engines, patterns)
        finally:
            for _, engine in engines:
                engine.close()
        expected = counts[engines[0][0]]
        for label, engine_counts in counts.items():
            assert engine_counts == expected, (name, label)
        auto_seconds = seconds.pop("auto")
        candidate_seconds = seconds
        best_label = min(candidate_seconds, key=candidate_seconds.get)
        best_seconds = candidate_seconds[best_label]
        ratio = auto_seconds / best_seconds
        payload["workloads"][name] = {
            "n": dataset.n,
            "d": dataset.d,
            "plan": plan.config.to_dict(),
            "rationale": list(plan.rationale),
            "plan_seconds": plan_seconds,
            "auto_seconds": auto_seconds,
            "candidates": candidate_seconds,
            "best_candidate": best_label,
            "best_seconds": best_seconds,
            "auto_over_best_ratio": ratio,
        }
        rows.append(
            (
                name,
                plan.config.backend,
                f"{auto_seconds:.4f}",
                best_label.split(" ")[0],
                f"{best_seconds:.4f}",
                f"{ratio:.2f}x",
            )
        )
    emit_bench(
        "planner",
        f"auto planner vs hand-tuned backends ({N_MASKS} batched masks)",
        ["workload", "auto backend", "auto s", "best hand-tuned", "best s", "ratio"],
        rows,
        payload,
    )
    # The pin: a wrong plan would show up as a large ratio on its zone.
    for name, entry in payload["workloads"].items():
        assert entry["auto_over_best_ratio"] <= MAX_AUTO_RATIO, (
            name,
            entry["auto_over_best_ratio"],
        )
    return payload


def test_bench_planner(tmp_path):
    run(str(tmp_path), full=config.FULL)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke", action="store_true", help="smoke sizes (the default)"
    )
    mode.add_argument("--full", action="store_true", help="paper-sized runs")
    args = parser.parse_args(argv)
    with tempfile.TemporaryDirectory(prefix="repro-bench-planner-") as root:
        run(root, full=args.full or config.FULL)
    return 0


if __name__ == "__main__":
    sys.exit(main())
