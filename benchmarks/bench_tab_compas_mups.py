"""§V-B1 — lack of coverage in the COMPAS data (the paper's MUP table).

Paper: 65 MUPs at τ=10 over (sex, age, race, marital status) — 19 at level
2, 23 at level 3, 23 at level 4 — with every single attribute value covered
and XX23 (widowed Hispanics, 2 rows, both re-offenders) as the headline gap.
"""

import _config as config
from _harness import emit, timed

from repro.core.mups import deepdiver
from repro.core.pattern import Pattern


def test_compas_mup_table(benchmark, compas):
    result, seconds = benchmark.pedantic(
        timed, args=(deepdiver, compas, config.COMPAS_THRESHOLD), rounds=1, iterations=1
    )
    histogram = result.level_histogram()
    emit(
        "Tab.V-B1 COMPAS MUPs (tau=10)",
        ["level", "mups (paper: L2=19 L3=23 L4=23, total 65)"],
        [(level, count) for level, count in histogram.items()],
    )
    # Shape assertions mirroring the paper's observations:
    # every single attribute value is covered (no level-1 MUPs)...
    assert histogram.get(1, 0) == 0
    # ...but multi-attribute MUPs exist, concentrated at levels 2-4...
    assert set(histogram) <= {2, 3, 4}
    assert len(result) > 30
    # ...including the widowed-Hispanic gap XX23.
    assert Pattern.from_string("XX23") in result


def test_compas_identification_benchmark(benchmark, compas):
    result = benchmark(deepdiver, compas, config.COMPAS_THRESHOLD)
    assert len(result) > 0
