"""Ablation — Rule 1's deduplicated tree vs a naive BFS with a visited set.

Rule 1 (§III-C) turns the pattern graph into a tree so every candidate is
generated exactly once; the alternative is generating every child from
every parent and deduplicating with a visited set.  This bench counts the
generation work saved on the real traversal frontier.
"""

from typing import Dict, Set

import numpy as np

import _config as config
from _harness import emit, timed

from repro.core.coverage import CoverageOracle
from repro.core.mups import pattern_breaker
from repro.core.pattern import Pattern
from repro.core.pattern_graph import PatternSpace
from repro.data.airbnb import load_airbnb


def _naive_bfs_with_visited_set(dataset, threshold):
    """PATTERN-BREAKER without Rule 1: every parent generates every child,
    duplicates are filtered through a visited set.  Returns (mups, stats)."""
    space = PatternSpace.for_dataset(dataset)
    oracle = CoverageOracle(dataset)
    generated = 0
    root = space.root()
    frontier: Dict[Pattern, np.ndarray] = {root: oracle.full_mask()}
    covered_prev: Set[Pattern] = set()
    mups = []
    for level in range(space.d + 1):
        if not frontier:
            break
        covered_here: Set[Pattern] = set()
        next_frontier: Dict[Pattern, np.ndarray] = {}
        for pattern, mask in frontier.items():
            if level > 0 and any(
                parent not in covered_prev for parent in pattern.parents()
            ):
                continue
            count = oracle.coverage_of_mask(mask)
            if count < threshold:
                mups.append(pattern)
                continue
            covered_here.add(pattern)
            for index in pattern.nondeterministic_indices():
                for value in range(space.cardinalities[index]):
                    child = pattern.with_value(index, value)
                    generated += 1  # every (parent, child) edge pays
                    if child not in next_frontier:
                        next_frontier[child] = oracle.restrict_mask(
                            mask, index, value
                        )
        covered_prev = covered_here
        frontier = next_frontier
    return mups, generated


def test_ablation_rule1(benchmark):
    dataset = load_airbnb(n=config.AIRBNB_N, d=11)
    oracle = CoverageOracle(dataset)
    tau = oracle.threshold_from_rate(1e-3)

    rule1_result, rule1_seconds = benchmark.pedantic(
        timed, args=(pattern_breaker, dataset, tau), rounds=1, iterations=1
    )
    (naive_mups, naive_generated), naive_seconds = timed(
        _naive_bfs_with_visited_set, dataset, tau
    )
    assert set(naive_mups) == rule1_result.as_set()
    emit(
        f"Ablation.R1 Rule-1 tree vs naive BFS (AirBnB n={dataset.n} d=11)",
        ["variant", "seconds", "candidates generated"],
        [
            (
                "Rule 1 (each node once)",
                f"{rule1_seconds:.2f}",
                rule1_result.stats.nodes_generated,
            ),
            ("all-parents + visited set", f"{naive_seconds:.2f}", naive_generated),
        ],
    )
    # Rule 1 must generate strictly fewer candidates (each node once vs
    # once per parent).
    assert rule1_result.stats.nodes_generated < naive_generated
