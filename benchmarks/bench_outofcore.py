"""Out-of-core sharded engine: resident-budget sweep × shard fan-out.

Streams a non-uniform synthetic workload (large distinct-combination
space, so the multiplicity-weighted counting kernel dominates) through the
mmap shard store:

* **budget sweep** — the same batched workload under an unlimited, a
  half-index, and a quarter-index ``max_resident_bytes`` budget, reporting
  wall clock and the loader's load/eviction/hit instrumentation;
* **fan-out** — serial vs thread-pool vs process-pool shard evaluation at
  an unlimited budget.  The process pool attaches to the spill files by
  path, so only mask windows cross the process boundary; on the smoke
  workload it must stay within 1.3x of the serial sharded engine (the
  bound that keeps per-query IPC overhead honest), and all modes must
  return byte-identical answers to the unsharded packed engine.

Emits the canonical ``BENCH_outofcore.json`` via the shared writer.
"""

import numpy as np

import _config as config
from _harness import emit_bench, timed

from repro.core.engine import PackedBitsetEngine, ShardedEngine
from repro.core.pattern import Pattern, X
from repro.data.synthetic import random_categorical_dataset

#: Smoke sizes keep the whole bench under ~15 s on a laptop core.
N = config.pick(300_000, 2_000_000)
CARDINALITIES = config.pick((16, 12, 10, 10, 8), (24, 18, 12, 10, 10, 8))
N_MASKS = config.pick(512, 1024)
SHARDS = 4
WORKERS = 3
REPS = 3


def _patterns(dataset, k):
    rng = np.random.default_rng(5)
    patterns = []
    for _ in range(k):
        values = [
            X if rng.random() < 0.6 else int(rng.integers(c))
            for c in dataset.cardinalities
        ]
        patterns.append(Pattern(values))
    return patterns


def _best_of(fn, reps=REPS):
    """Best-of-``reps`` wall clock (excludes pool startup after rep 1)."""
    best, result = None, None
    for _ in range(reps):
        result, seconds = timed(fn)
        best = seconds if best is None else min(best, seconds)
    return result, best


def test_bench_outofcore(benchmark, tmp_path):
    dataset = random_categorical_dataset(
        N, CARDINALITIES, seed=23, skew=0.25
    )
    patterns = _patterns(dataset, N_MASKS)
    packed = PackedBitsetEngine(dataset, mask_cache_size=0)
    expected = list(packed.count_many([packed.match_mask(p) for p in patterns]))

    root = str(tmp_path)
    writer = ShardedEngine(dataset, shards=SHARDS, spill_dir=root, mask_cache_size=0)
    # Budgets derive from the full resident footprint (words + counts),
    # which is what the loader actually charges per shard.
    spilled_nbytes = writer.store.data_nbytes
    spill_path = writer.spill_path
    payload = {
        "n": dataset.n,
        "d": dataset.d,
        "unique": writer.unique_count,
        "masks": N_MASKS,
        "shards": SHARDS,
        "workers": WORKERS,
        "index_nbytes": writer.index_nbytes,
        "spilled_nbytes": spilled_nbytes,
        "budgets": {},
        "fanout": {},
    }
    rows = []

    # --- resident-budget sweep (serial evaluation) --------------------
    # Floor each budget at the largest single shard so the
    # peak_resident_bytes assertion can't trip on the loader's documented
    # over-budget tolerance when shard spans round unevenly.
    max_shard = max(
        writer.store.shard_nbytes(shard_id) for shard_id in range(SHARDS)
    )
    budgets = [
        ("unlimited", None),
        ("half", max(spilled_nbytes // 2, max_shard)),
        ("quarter", max(spilled_nbytes // 4, max_shard)),
    ]
    for label, budget in budgets:
        engine = ShardedEngine.attach(
            dataset, spill_path, max_resident_bytes=budget, mask_cache_size=0
        )
        masks = [engine.match_mask(p) for p in patterns]

        def workload(engine=engine, masks=masks, patterns=patterns):
            counts = engine.count_many(masks)
            # A small match pass keeps the word blocks (not just the
            # multiplicities) in the streaming loop.
            for pattern in patterns[:32]:
                engine.match_mask(pattern)
            return counts

        if label == "unlimited":
            # The pedantic baseline doubles as the serial fan-out entry.
            counts, seconds = benchmark.pedantic(
                lambda: timed(workload), rounds=1, iterations=1
            )
            _, second = timed(workload)
            seconds = min(seconds, second)
        else:
            counts, seconds = _best_of(workload, reps=2)
        assert list(counts) == expected
        stats = engine.store.stats()
        if budget is not None:
            assert stats["peak_resident_bytes"] <= budget
            assert stats["evictions"] > 0
        payload["budgets"][label] = {
            "max_resident_bytes": budget,
            "seconds": seconds,
            "stats": stats,
        }
        hit_rate = stats["hits"] / max(1, stats["hits"] + stats["loads"])
        rows.append(
            (
                f"budget={label}",
                f"{seconds:.3f}",
                budget if budget is not None else "-",
                stats["loads"],
                stats["evictions"],
                f"{hit_rate:.2%}",
            )
        )
        engine.close()

    # --- fan-out comparison at unlimited budget -----------------------
    fanout_engines = {
        "serial": ShardedEngine.attach(dataset, spill_path, mask_cache_size=0),
        "thread": ShardedEngine.attach(
            dataset, spill_path, workers=WORKERS, mask_cache_size=0
        ),
        "process": ShardedEngine.attach(
            dataset,
            spill_path,
            workers=WORKERS,
            workers_mode="process",
            mask_cache_size=0,
        ),
    }
    seconds = {}
    for label, engine in fanout_engines.items():
        masks = [engine.match_mask(p) for p in patterns]
        counts, best = _best_of(lambda e=engine, m=masks: e.count_many(m))
        assert list(counts) == expected, label
        seconds[label] = best
        payload["fanout"][label] = {
            "seconds": best,
            "effective_mode": engine.effective_workers_mode,
        }
        rows.append((f"fanout={label}", f"{best:.3f}", "-", "-", "-", "-"))
    payload["process_over_serial_time_ratio"] = (
        seconds["process"] / seconds["serial"]
    )
    for engine in fanout_engines.values():
        engine.close()
    writer.close()

    emit_bench(
        "outofcore",
        f"out-of-core sharded engine, budget sweep x fan-out "
        f"({N_MASKS} batched masks, n={dataset.n} unique={payload['unique']})",
        ["configuration", "seconds", "budget bytes", "loads", "evictions", "hit rate"],
        rows,
        payload,
    )
    # Process fan-out ships only mask windows (children attach to the mmap
    # by path); per-query IPC must stay within 1.3x of serial evaluation
    # even on a single-core smoke machine.
    assert seconds["process"] <= seconds["serial"] * 1.3
