"""Distributed execution benchmark: socket fan-out and delta re-spill.

Two pins, one artifact (``BENCH_distributed.json``):

* **Delta re-spill** — a spilled shard store takes a small delivery
  (<= 5% of rows, all duplicating combinations from ONE shard's slice, the
  localized-arrival case incremental reuse exists for) and re-indexes via
  :meth:`ShardStoreWriter.delta_write`.  The pins: the delta pass rewrites
  **<= 25% of the store's bytes** (every clean shard is hard-linked, not
  re-serialized) and is **>= 5x faster** than rebuilding the spill from
  scratch; attaching the delta'd directory passes the v2 per-shard
  fingerprint validation and answers a probe workload bit-identically to
  a fresh engine over the appended dataset.
* **Socket fan-out** — the same batched mask workload runs over the same
  spill directory under ``workers_mode="process"`` (fork pool) and
  ``workers_mode="socket"`` (spawn-local shard workers answering
  length-prefixed frames).  The pin: single-host socket execution stays
  **within 1.5x of process-mode wall clock**, and full MUP identification
  on the socket engine returns a set bit-identical to the dense
  reference.

Also runnable standalone (the CI distributed smoke job):

    python benchmarks/bench_distributed.py --smoke
"""

import argparse
import sys
import tempfile

import numpy as np

import _config as config
from _harness import emit_bench, timed

from repro.core.engine import (
    DenseBoolEngine,
    ShardedEngine,
    ShardStoreWriter,
)
from repro.core.engine.sharded import _fork_available
from repro.core.mups.base import find_mups
from repro.core.pattern import Pattern, X
from repro.data.synthetic import random_categorical_dataset

#: The pin: a localized <= 5% delivery rewrites at most this byte share.
MAX_DELTA_BYTE_SHARE = 0.25

#: The pin: the delta pass beats a from-scratch re-spill by this factor.
MIN_DELTA_SPEEDUP = 5.0

#: The pin: socket fan-out stays within this factor of process fan-out.
MAX_SOCKET_OVER_PROCESS = 1.5

#: Delta leg: many shards keep the dirty fraction (1 shard) small, and
#: high-cardinality attributes make the per-shard membership blocks (the
#: bytes reuse skips) dominate the fixed re-index costs every path pays
#: (unique aggregation, dataset payload, fingerprinting) — the regime
#: incremental reuse exists for.
DELTA_N = config.pick(300_000, 2_000_000)
DELTA_CARDINALITIES = config.pick(
    (256, 192, 128, 96), (384, 256, 192, 128)
)
DELTA_SHARDS = 24
DELTA_APPEND_SHARE = 0.02  # 2% of rows, well under the 5% pin premise

#: Socket leg: the out-of-core fan-out workload from BENCH_outofcore.
SOCKET_N = config.pick(300_000, 2_000_000)
SOCKET_CARDINALITIES = config.pick((16, 12, 10, 10, 8), (24, 18, 12, 10, 10, 8))
SOCKET_N_MASKS = config.pick(512, 1024)
SOCKET_SHARDS = 4
SOCKET_WORKERS = 2
REPS = 3

#: MUP-identification cross-check: small enough for a dense reference.
MUP_N = config.pick(4_000, 20_000)
MUP_CARDINALITIES = (5, 4, 3, 3)
MUP_THRESHOLD = 5


def _patterns(dataset, k, seed=7):
    rng = np.random.default_rng(seed)
    patterns = []
    for _ in range(k):
        values = [
            X if rng.random() < 0.6 else int(rng.integers(c))
            for c in dataset.cardinalities
        ]
        patterns.append(Pattern(values))
    return patterns


def _best_of(fn, reps=REPS):
    best, result = None, None
    for _ in range(reps):
        result, seconds = timed(fn)
        best = seconds if best is None else min(best, seconds)
    return result, best


# ----------------------------------------------------------------------
# leg 1: incremental spill reuse
# ----------------------------------------------------------------------
def run_delta_leg(root, rows, payload):
    dataset = random_categorical_dataset(
        DELTA_N, DELTA_CARDINALITIES, seed=31, skew=0.3
    )
    engine = ShardedEngine(
        dataset, shards=DELTA_SHARDS, spill_dir=root, mask_cache_size=0
    )
    store_bytes = engine.store.data_nbytes

    # The localized delivery: duplicates of combinations that all live in
    # shard 0's slice of the sorted unique space.
    info = engine.shard_infos[0]
    rng = np.random.default_rng(4)
    n_append = max(1, int(dataset.n * DELTA_APPEND_SHARE))
    picks = rng.integers(0, len(info.unique_rows), size=n_append)
    appended = dataset.append_rows(info.unique_rows[picks].copy())
    assert appended.n - dataset.n <= 0.05 * dataset.n

    # Both re-index paths share the appended dataset's unique-combination
    # aggregation (the dataset caches it); warm it up front so the pin
    # measures serialization — the cost delta reuse actually removes —
    # not a one-time sort both paths pay identically.
    appended.unique_rows()
    appended.unique_inverse()

    result = None
    delta_seconds = None
    delta_dir = None
    # Delta passes are ~ms-scale, so extra reps are cheap insurance
    # against scheduler noise on shared CI runners.
    for _ in range(REPS + 2):
        candidate_dir = tempfile.mkdtemp(prefix="repro-delta-", dir=root)
        candidate, seconds = timed(
            lambda d=candidate_dir: ShardStoreWriter.delta_write(
                engine.store, appended, d, owns_files=False
            )
        )
        candidate.store.close()
        if delta_seconds is None or seconds < delta_seconds:
            delta_seconds = seconds
            result = candidate
            delta_dir = candidate_dir

    def full_rebuild():
        fresh = ShardedEngine(
            appended, shards=DELTA_SHARDS, spill_dir=root, mask_cache_size=0
        )
        fresh.close()

    _, full_seconds = _best_of(full_rebuild)

    total_bytes = result.reused_bytes + result.written_bytes
    byte_share = result.written_bytes / max(1, total_bytes)
    speedup = full_seconds / delta_seconds

    # attach() recomputes every shard fingerprint — including the
    # hard-linked ones — against the appended dataset, and the probe
    # workload must be bit-identical to a fresh engine.
    attached = ShardedEngine.attach(appended, delta_dir, mask_cache_size=0)
    reference = ShardedEngine(
        appended, shards=DELTA_SHARDS, mask_cache_size=0
    )
    probes = _patterns(appended, 128, seed=9)
    assert list(attached.coverage_many(probes)) == list(
        reference.coverage_many(probes)
    )
    attached.close()
    reference.close()
    engine.close()

    payload["delta"] = {
        "n": dataset.n,
        "appended_rows": int(appended.n - dataset.n),
        "shards": DELTA_SHARDS,
        "store_nbytes": store_bytes,
        "reused_shards": result.reused_shards,
        "rewritten_shards": result.rewritten_shards,
        "reused_bytes": result.reused_bytes,
        "written_bytes": result.written_bytes,
        "written_byte_share": byte_share,
        "delta_seconds": delta_seconds,
        "full_rebuild_seconds": full_seconds,
        "speedup_over_full": speedup,
    }
    rows.append(
        (
            "delta re-spill",
            f"{delta_seconds:.3f}",
            f"{full_seconds:.3f}",
            f"{result.reused_shards}/{DELTA_SHARDS} reused",
            f"{byte_share:.1%} bytes rewritten",
        )
    )
    print(
        f"delta: {result.rewritten_shards} dirty shard(s), "
        f"{byte_share:.1%} of bytes rewritten, "
        f"{speedup:.1f}x faster than full rebuild"
    )
    assert byte_share <= MAX_DELTA_BYTE_SHARE, (
        f"delta rewrote {byte_share:.1%} of store bytes "
        f"(pin: <= {MAX_DELTA_BYTE_SHARE:.0%})"
    )
    assert speedup >= MIN_DELTA_SPEEDUP, (
        f"delta re-spill only {speedup:.2f}x faster than a full rebuild "
        f"(pin: >= {MIN_DELTA_SPEEDUP}x)"
    )


# ----------------------------------------------------------------------
# leg 2: socket fan-out vs process fan-out
# ----------------------------------------------------------------------
def run_socket_leg(root, rows, payload):
    dataset = random_categorical_dataset(
        SOCKET_N, SOCKET_CARDINALITIES, seed=23, skew=0.25
    )
    patterns = _patterns(dataset, SOCKET_N_MASKS)
    writer = ShardedEngine(
        dataset, shards=SOCKET_SHARDS, spill_dir=root, mask_cache_size=0
    )
    spill_path = writer.spill_path

    modes = {
        "process": ShardedEngine.attach(
            dataset,
            spill_path,
            workers=SOCKET_WORKERS,
            workers_mode="process",
            mask_cache_size=0,
        ),
        "socket": ShardedEngine.attach(
            dataset,
            spill_path,
            workers=SOCKET_WORKERS,
            workers_mode="socket",
            mask_cache_size=0,
        ),
    }
    expected = None
    seconds = {}
    for label, engine in modes.items():
        assert engine.effective_workers_mode == label
        masks = [engine.match_mask(p) for p in patterns]
        counts, best = _best_of(lambda e=engine, m=masks: e.count_many(m))
        counts = list(counts)
        if expected is None:
            expected = counts
        assert counts == expected, f"{label} diverged from process counts"
        seconds[label] = best
        payload["fanout"][label] = {
            "seconds": best,
            "effective_mode": engine.effective_workers_mode,
        }
        rows.append((f"fanout={label}", f"{best:.3f}", "-", "-", "-"))
        engine.close()
    writer.close()

    ratio = seconds["socket"] / seconds["process"]
    payload["socket_over_process_time_ratio"] = ratio
    print(f"socket fan-out at {ratio:.2f}x process-mode wall clock")
    assert ratio <= MAX_SOCKET_OVER_PROCESS, (
        f"socket fan-out at {ratio:.2f}x process time "
        f"(pin: <= {MAX_SOCKET_OVER_PROCESS}x)"
    )

    # Full MUP identification on a socket engine, bit-identical to dense.
    mup_dataset = random_categorical_dataset(
        MUP_N, MUP_CARDINALITIES, seed=11, skew=1.4
    )
    reference = find_mups(
        mup_dataset,
        threshold=MUP_THRESHOLD,
        engine=DenseBoolEngine(mup_dataset),
    )
    with tempfile.TemporaryDirectory(prefix="repro-mup-", dir=root) as mup_root:
        engine = ShardedEngine(
            mup_dataset,
            shards=SOCKET_SHARDS,
            workers=SOCKET_WORKERS,
            workers_mode="socket",
            spill_dir=mup_root,
        )
        try:
            result = find_mups(
                mup_dataset, threshold=MUP_THRESHOLD, engine=engine
            )
        finally:
            engine.close()
    assert result.as_set() == reference.as_set(), (
        "socket MUP set diverged from the dense reference"
    )
    payload["mup_crosscheck"] = {
        "n": mup_dataset.n,
        "threshold": MUP_THRESHOLD,
        "mups": len(result.mups),
        "identical_to_dense": True,
    }
    rows.append(
        (
            "mup crosscheck",
            "-",
            "-",
            f"{len(result.mups)} MUPs",
            "bit-identical to dense",
        )
    )


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--smoke", action="store_true", help="smoke sizes (the default)"
    )
    parser.parse_args(argv)

    if not _fork_available():
        print("fork unavailable: distributed benchmark skipped")
        return 0

    payload = {
        "pins": {
            "max_delta_byte_share": MAX_DELTA_BYTE_SHARE,
            "min_delta_speedup": MIN_DELTA_SPEEDUP,
            "max_socket_over_process": MAX_SOCKET_OVER_PROCESS,
        },
        "fanout": {},
    }
    rows = []
    with tempfile.TemporaryDirectory(prefix="repro-dist-bench-") as root:
        run_delta_leg(root, rows, payload)
        run_socket_leg(root, rows, payload)

    emit_bench(
        "distributed",
        f"distributed shard execution + incremental spill reuse "
        f"(delta n={DELTA_N}, fanout n={SOCKET_N}, "
        f"{SOCKET_N_MASKS} batched masks)",
        ["leg", "seconds", "baseline s", "reuse", "outcome"],
        rows,
        payload,
    )
    return 0


if __name__ == "__main__":
    sys.exit(main())
