"""Serving-layer benchmark: batching speedup and latency under deliveries.

Two pins, one artifact (``BENCH_serve.json``):

* **Batching QPS** — the same point-coverage workload (many concurrent
  single-pattern requests, drawn with repetition from a small pattern
  pool) runs against two services that differ only in the coalescing
  window: ``0`` (every request is its own engine query — the unbatched
  baseline) vs the default window (concurrent requests merge into
  ``coverage_many`` passes and identical in-flight patterns share one
  engine slot).  Requests drive the service's query path (batcher over the
  registered snapshot) directly, so the pin isolates the batching
  mechanism rather than JSON envelope costs that are identical in both
  modes.  The pin: **batched throughput is at least 3× unbatched**, and
  both modes return counts bit-identical to a serial oracle.
* **Latency under deliveries** — a real HTTP server (ephemeral port, the
  same transport production uses) takes concurrent ``label`` traffic from
  client threads while another thread streams row deliveries.  Every
  response must be internally consistent (the all-wildcard probe's count
  equals the same response's row total — a torn snapshot could not pass),
  and client p95 latency stays under the bound.

The result cache is disabled in both legs so the pins measure the batcher
and the snapshot path, not cache hits.  Also runnable standalone (the CI
serve smoke job):

    python benchmarks/bench_serve.py --smoke
"""

import argparse
import asyncio
import http.client
import json
import statistics
import sys
import threading
import time

import _config as config
from _harness import emit_bench, random_patterns

from repro.core.coverage import CoverageOracle
from repro.core.engine import EngineConfig
from repro.data.dataset import Dataset
from repro.data.synthetic import random_categorical_dataset
from repro.serve import BackgroundServer, CoverageService, ServeConfig

#: The pin: coalescing must buy at least this throughput factor.
MIN_BATCH_SPEEDUP = 3.0

#: The pin: client p95 latency under concurrent deliveries stays under this.
LATENCY_BOUND_MS = 250.0

#: QPS leg: a dataset large enough that a point query costs real engine
#: work (the regime batching exists for), and a pattern pool small enough
#: that concurrent traffic repeats patterns — the serving hot-query case.
QPS_ROWS = config.pick(200_000, 500_000)
QPS_CARDINALITIES = (40, 30, 20, 12)
N_REQUESTS = config.pick(4_000, 10_000)
N_DISTINCT = 32
QPS_REPS = 5

#: HTTP leg: label requests per client thread, client threads, deliveries.
HTTP_ROWS = config.pick(20_000, 100_000)
HTTP_CARDINALITIES = (4, 3, 3, 2, 2)
HTTP_REQUESTS = config.pick(40, 150)
HTTP_CLIENTS = 4
HTTP_DELIVERIES = config.pick(6, 20)


# ----------------------------------------------------------------------
# leg 1: batched vs unbatched QPS at the service query path
# ----------------------------------------------------------------------
def _measure_qps(dataset, workload, batch_window_ms):
    """Median QPS over reps for one service mode; returns (qps, counts).

    Drives the service's query path — the batcher against the registered
    snapshot — with one request per workload pattern.  The engine's
    hot-mask cache is disabled so the unbatched baseline pays each query's
    real engine cost instead of a mask-cache hit (the cache layer has its
    own tests; this leg pins coalescing).
    """

    async def _run():
        service = CoverageService(
            ServeConfig(
                port=0,
                batch_window_ms=batch_window_ms,
                result_cache_size=0,
                engine=EngineConfig(backend="auto", mask_cache_size=0),
            )
        )
        try:
            report = await service.register_dataset(
                dataset.rows.tolist(), names=list(dataset.schema.names)
            )
            snapshot = service.registry.get(report["dataset"]).snapshot
            # Warmup rep: flush-task and executor spin-up.
            await asyncio.gather(
                *(service.batcher.coverage(snapshot, p) for p in workload)
            )
            rates = []
            counts = None
            for _ in range(QPS_REPS):
                start = time.perf_counter()
                counts = await asyncio.gather(
                    *(service.batcher.coverage(snapshot, p) for p in workload)
                )
                seconds = time.perf_counter() - start
                rates.append(len(workload) / seconds)
            return statistics.median(rates), list(counts), service.batcher.info()
        finally:
            service.close()

    return asyncio.run(_run())


def run_qps_leg(dataset, payload):
    pool = random_patterns(dataset, N_DISTINCT, seed=13)
    workload = [pool[i % N_DISTINCT] for i in range(N_REQUESTS)]
    oracle = CoverageOracle(dataset)
    expected = [oracle.coverage(p) for p in workload]
    oracle.engine.close()

    unbatched_qps, unbatched_counts, _ = _measure_qps(dataset, workload, 0.0)
    batched_qps, batched_counts, batcher = _measure_qps(
        dataset, workload, ServeConfig().batch_window_ms
    )
    assert unbatched_counts == expected, "unbatched counts diverge from serial"
    assert batched_counts == expected, "batched counts diverge from serial"
    ratio = batched_qps / unbatched_qps
    payload["qps"] = {
        "n": dataset.n,
        "d": dataset.d,
        "requests": N_REQUESTS,
        "distinct_patterns": N_DISTINCT,
        "unbatched_qps": unbatched_qps,
        "batched_qps": batched_qps,
        "batched_over_unbatched": ratio,
        "min_speedup": MIN_BATCH_SPEEDUP,
        "batcher": batcher,
    }
    return [
        (
            "qps point-query",
            f"{unbatched_qps:,.0f} q/s",
            f"{batched_qps:,.0f} q/s",
            f"{ratio:.1f}x",
        )
    ]


# ----------------------------------------------------------------------
# leg 2: HTTP p95 latency under concurrent deliveries
# ----------------------------------------------------------------------
def _post(host, port, path, body, timeout=60):
    connection = http.client.HTTPConnection(host, port, timeout=timeout)
    try:
        connection.request(
            "POST",
            path,
            json.dumps(body),
            {"Content-Type": "application/json"},
        )
        response = connection.getresponse()
        return response.status, json.loads(response.read())
    finally:
        connection.close()


def run_http_leg(dataset, payload):
    probe = [None] * dataset.d  # all-wildcard: coverage must equal n
    latencies = []
    failures = []
    lock = threading.Lock()

    with BackgroundServer(ServeConfig(port=0, result_cache_size=0)) as server:
        status, report = _post(
            server.host,
            server.port,
            "/datasets",
            {
                "rows": dataset.rows.tolist(),
                "names": list(dataset.schema.names),
            },
        )
        assert status == 200, report
        key = report["dataset"]

        def client():
            for _ in range(HTTP_REQUESTS):
                start = time.perf_counter()
                code, body = _post(
                    server.host, server.port, "/label",
                    {"dataset": key, "patterns": [probe]},
                )
                elapsed = time.perf_counter() - start
                with lock:
                    latencies.append(elapsed)
                    if code != 200:
                        failures.append(body)
                    elif body["coverage"][0] != body["total"]:
                        # The probe matches every row, so its count and the
                        # response's row total must come from one snapshot.
                        failures.append(body)

        def deliverer():
            rows = dataset.rows[:5].tolist()
            for _ in range(HTTP_DELIVERIES):
                code, body = _post(
                    server.host, server.port, "/deliver",
                    {"dataset": key, "rows": rows, "threshold": 1},
                )
                with lock:
                    if code != 200:
                        failures.append(body)

        threads = [
            threading.Thread(target=client) for _ in range(HTTP_CLIENTS)
        ] + [threading.Thread(target=deliverer)]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join()

    assert not failures, failures[:3]
    latencies.sort()
    p50 = latencies[len(latencies) // 2] * 1000
    p95 = latencies[int(len(latencies) * 0.95)] * 1000
    payload["http"] = {
        "clients": HTTP_CLIENTS,
        "requests": len(latencies),
        "deliveries": HTTP_DELIVERIES,
        "p50_ms": p50,
        "p95_ms": p95,
        "latency_bound_ms": LATENCY_BOUND_MS,
    }
    return [
        (
            "http under deliveries",
            f"p50 {p50:.1f} ms",
            f"p95 {p95:.1f} ms",
            f"bound {LATENCY_BOUND_MS:.0f} ms",
        )
    ]


def _served_dataset(n, cardinalities, seed):
    """A synthetic dataset normalized through ``from_rows``.

    Registration rebuilds the posted rows via ``Dataset.from_rows``, which
    *infers* cardinalities from the observed values — so patterns (and the
    serial truth) must be generated against the same inferred schema, not
    the generator's nominal one.
    """
    raw = random_categorical_dataset(n, cardinalities, seed=seed, skew=0.4)
    return Dataset.from_rows(
        raw.rows.tolist(), names=list(raw.schema.names)
    )


def run(full=False):
    payload = {
        "min_batch_speedup": MIN_BATCH_SPEEDUP,
        "latency_bound_ms": LATENCY_BOUND_MS,
    }
    rows = run_qps_leg(
        _served_dataset(QPS_ROWS, QPS_CARDINALITIES, seed=17), payload
    )
    rows += run_http_leg(
        _served_dataset(HTTP_ROWS, HTTP_CARDINALITIES, seed=23), payload
    )
    emit_bench(
        "serve",
        f"serving layer: batching QPS + latency under deliveries "
        f"({N_REQUESTS} point queries, {N_DISTINCT} distinct)",
        ["leg", "baseline", "measured", "verdict"],
        rows,
        payload,
    )
    # The pins.
    assert payload["qps"]["batched_over_unbatched"] >= MIN_BATCH_SPEEDUP, (
        payload["qps"]["batched_over_unbatched"]
    )
    assert payload["http"]["p95_ms"] <= LATENCY_BOUND_MS, (
        payload["http"]["p95_ms"]
    )
    return payload


def test_bench_serve():
    run(full=config.FULL)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke", action="store_true", help="smoke sizes (the default)"
    )
    mode.add_argument("--full", action="store_true", help="paper-sized runs")
    args = parser.parse_args(argv)
    run(full=args.full or config.FULL)
    return 0


if __name__ == "__main__":
    sys.exit(main())
