"""Ablation — Appendix B's dominance index vs a linear scan over the MUPs.

DEEPDIVER issues a dominance query per visited node; with thousands of
MUPs the per-query cost decides the algorithm's viability.  This bench
compares the bit-vector index against the naive scan both as raw query
throughput and end-to-end inside DEEPDIVER.
"""

import numpy as np

import _config as config
from _harness import emit, timed

from repro.core.coverage import CoverageOracle
from repro.core.dominance import (
    MupDominanceIndex,
    dominated_by_any_scan,
    dominates_any_scan,
)
from repro.core.mups import deepdiver
from repro.core.pattern_graph import PatternSpace
from repro.data.airbnb import load_airbnb

N_QUERIES = 2_000


def _mups_and_probes():
    dataset = load_airbnb(n=config.AIRBNB_N, d=config.AIRBNB_D)
    oracle = CoverageOracle(dataset)
    tau = oracle.threshold_from_rate(1e-3)
    mups = list(deepdiver(dataset, tau).mups)
    space = PatternSpace.for_dataset(dataset)
    rng = np.random.default_rng(19)
    probes = [space.random_pattern(rng) for _ in range(N_QUERIES)]
    return mups, probes, space


def test_ablation_dominance_queries(benchmark):
    mups, probes, space = _mups_and_probes()
    index = MupDominanceIndex(space.cardinalities)
    index.extend(mups)

    indexed, indexed_seconds = benchmark.pedantic(
        timed,
        args=(
            lambda: [
                (index.dominated_by_any(p), index.dominates_any(p)) for p in probes
            ],
        ),
        rounds=1,
        iterations=1,
    )
    scanned, scanned_seconds = timed(
        lambda: [
            (dominated_by_any_scan(mups, p), dominates_any_scan(mups, p))
            for p in probes
        ]
    )
    assert indexed == scanned
    emit(
        f"Ablation.B dominance queries ({N_QUERIES} probes over {len(mups)} MUPs)",
        ["method", "seconds"],
        [
            ("bit-vector index (Appendix B)", f"{indexed_seconds:.3f}"),
            ("linear scan", f"{scanned_seconds:.3f}"),
        ],
    )


def test_ablation_deepdiver_end_to_end(benchmark):
    # The linear-scan variant is quadratic in the MUP count, so this
    # end-to-end comparison runs at a size where it finishes (it already
    # loses by an order of magnitude here; larger settings only widen it).
    dataset = load_airbnb(n=10_000, d=9)
    oracle = CoverageOracle(dataset)
    tau = oracle.threshold_from_rate(1e-3)
    with_index, with_seconds = benchmark.pedantic(
        timed,
        args=(deepdiver, dataset, tau),
        kwargs={"use_dominance_index": True},
        rounds=1,
        iterations=1,
    )
    without, without_seconds = timed(
        deepdiver, dataset, tau, use_dominance_index=False
    )
    assert with_index.as_set() == without.as_set()
    emit(
        "Ablation.B2 DEEPDIVER with/without the dominance index",
        ["variant", "seconds", "mups"],
        [
            ("indexed", f"{with_seconds:.2f}", len(with_index)),
            ("linear scan", f"{without_seconds:.2f}", len(without)),
        ],
    )
    assert with_seconds < without_seconds


def test_ablation_dominance_benchmark(benchmark):
    mups, probes, space = _mups_and_probes()
    index = MupDominanceIndex(space.cardinalities)
    index.extend(mups)
    benchmark(lambda: [index.dominated_by_any(p) for p in probes])
