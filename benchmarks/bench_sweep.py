"""Amortized threshold-sweep benchmark: one sweep vs per-τ runs.

Times ``sweep_mups`` over an 8-threshold τ range against eight
independent ``find_mups`` runs on the same dataset, then cross-checks
that every τ's MUP set is **bit-identical** between the two strategies.
The pin: **the amortized sweep is at least 3× faster than the
independent runs** — the sweep pays one counting pass (each pattern
evaluated once, classified for every τ by its coverage interval) where
the independent runs re-count the lattice per threshold.

Emits the canonical ``BENCH_sweep.json`` via the shared writer.  Also
runnable standalone (the CI sweep smoke job):

    python benchmarks/bench_sweep.py --smoke
"""

import argparse
import statistics
import sys
import time

import _config as config
from _harness import MIN_MEASURE_SECONDS, emit_bench, timed

from repro.analysis.sweep import sweep_mups
from repro.core.mups import find_mups
from repro.data.scenarios import scenario_dataset

#: The pin: independent runs must cost at least this factor over one sweep.
MIN_SPEEDUP = 3.0

#: Eight thresholds — the ISSUE's canonical sweep width.
N_THRESHOLDS = 8

REPS = 5


def workloads(full=False):
    """(name, dataset, thresholds) triples spanning the scenario families."""
    pick = (lambda smoke, big: big if full else smoke)
    n = pick(8_000, 120_000)
    return [
        (
            "zipf-4d",
            scenario_dataset("zipf", n, (6, 5, 4, 3), seed=7, skew=1.2),
            tuple(range(4, 4 + 4 * N_THRESHOLDS, 4)),
        ),
        (
            "correlated-3d",
            scenario_dataset(
                "correlated", n, (5, 5, 4), seed=11, correlation=0.7
            ),
            tuple(range(2, 2 + 3 * N_THRESHOLDS, 3)),
        ),
    ]


def run_sweep(dataset, thresholds):
    return sweep_mups(dataset, thresholds)


def run_independent(dataset, thresholds):
    return {
        tau: find_mups(dataset, threshold=tau).mups for tau in thresholds
    }


def measure(fn, dataset, thresholds, reps=REPS):
    """Median per-run seconds, calibrated like the engine benches."""
    _, calibration = timed(fn, dataset, thresholds)
    inner = max(1, int(MIN_MEASURE_SECONDS / max(calibration, 1e-9)) + 1)
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        for _ in range(inner):
            fn(dataset, thresholds)
        samples.append((time.perf_counter() - start) / inner)
    return statistics.median(samples)


def run(full=False):
    rows = []
    payload = {"min_speedup": MIN_SPEEDUP, "workloads": {}}
    for name, dataset, thresholds in workloads(full):
        sweep = run_sweep(dataset, thresholds)
        independent = run_independent(dataset, thresholds)
        # Bit-identical answers at every τ, or the speedup is meaningless.
        for tau in thresholds:
            assert sweep.mups_at(tau).mups == independent[tau], (name, tau)
        sweep_seconds = measure(run_sweep, dataset, thresholds)
        independent_seconds = measure(run_independent, dataset, thresholds)
        speedup = independent_seconds / sweep_seconds
        payload["workloads"][name] = {
            "n": dataset.n,
            "d": dataset.d,
            "thresholds": list(thresholds),
            "sweep_seconds": sweep_seconds,
            "independent_seconds": independent_seconds,
            "speedup": speedup,
            "sweep_evaluations": sweep.stats.coverage_evaluations,
            "mups_per_tau": {
                str(tau): len(independent[tau]) for tau in thresholds
            },
        }
        rows.append(
            (
                name,
                dataset.n,
                f"{thresholds[0]}..{thresholds[-1]}",
                f"{sweep_seconds:.4f}",
                f"{independent_seconds:.4f}",
                f"{speedup:.1f}x",
            )
        )
    emit_bench(
        "sweep",
        f"amortized sweep vs {N_THRESHOLDS} independent runs",
        ["workload", "n", "tau range", "sweep s", "independent s", "speedup"],
        rows,
        payload,
    )
    # The pin: amortization must actually pay for itself.
    for name, entry in payload["workloads"].items():
        assert entry["speedup"] >= MIN_SPEEDUP, (name, entry["speedup"])
    return payload


def test_bench_sweep():
    run(full=config.FULL)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke", action="store_true", help="smoke sizes (the default)"
    )
    mode.add_argument("--full", action="store_true", help="paper-sized runs")
    args = parser.parse_args(argv)
    run(full=args.full or config.FULL)
    return 0


if __name__ == "__main__":
    sys.exit(main())
