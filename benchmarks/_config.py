"""Benchmark scales.

Default ("smoke") scales keep the whole harness under a few minutes on a
laptop; set ``REPRO_SCALE=full`` for paper-sized runs (the paper used a
3.8 GHz Xeon and a Java implementation, so full runs take a while in pure
Python).  Every bench reads its sizes from here so the two modes stay
consistent.
"""

from __future__ import annotations

import os

SCALE = os.environ.get("REPRO_SCALE", "smoke")
FULL = SCALE == "full"


def pick(smoke, full):
    """Return the smoke or full value depending on REPRO_SCALE."""
    return full if FULL else smoke


# --- MUP identification sweeps (Figures 12-16) -------------------------
AIRBNB_N = pick(30_000, 1_000_000)
AIRBNB_D = pick(11, 15)
THRESHOLD_RATES = pick(
    [1e-4, 1e-3, 1e-2],
    [1e-6, 1e-5, 1e-4, 1e-3, 1e-2],
)
APRIORI_RATE = pick(1e-2, 1e-2)  # the one rate APRIORI is run at

BLUENILE_N = pick(30_000, 116_300)
BLUENILE_RATES = pick([1e-4, 1e-3, 1e-2], [1e-5, 1e-4, 1e-3, 1e-2])

DATASIZE_SWEEP = pick(
    [1_000, 10_000, 30_000],
    [10_000, 100_000, 1_000_000],
)
DATASIZE_RATE = pick(1e-3, 1e-3)

DIMENSION_SWEEP = pick([5, 7, 9, 11], [5, 7, 9, 11, 13, 15, 17])
DIMENSION_RATE = pick(1e-3, 1e-3)

LEVEL_LIMITED_DIMS = pick([10, 15, 20, 25, 30, 35], [10, 15, 20, 25, 30, 35])
LEVEL_LIMITS = pick([2, 3], [2, 4, 6, 8])
LEVEL_LIMITED_N = pick(30_000, 1_000_000)
# A higher rate than the dimension sweep so shallow (level <= 2) MUPs exist
# at every d — the regime Figure 16 is about.
LEVEL_LIMITED_RATE = pick(1e-2, 1e-3)

# --- Coverage enhancement sweeps (Figures 17-19) -----------------------
ENHANCE_N = pick(30_000, 1_000_000)
ENHANCE_D = pick(11, 13)
# Smoke rates sit higher than the identification sweep because at n=30K the
# shallow (level <= 5) uncovered patterns the enhancement experiments hit
# only appear once τ reaches a few hundred.
ENHANCE_RATES = pick([3e-3, 1e-2, 3e-2], [1e-6, 1e-5, 1e-4, 1e-3, 1e-2])
ENHANCE_LEVELS = pick([4, 5], [3, 4, 5, 6])
ENHANCE_DIM_SWEEP = pick([5, 9, 11], [5, 10, 15, 20, 25, 30, 35])
ENHANCE_DIM_RATE = pick(3e-2, 1e-2)
NAIVE_ENHANCE_D = pick(9, 13)  # the one setting the naive baseline runs at

# --- Validation / quality experiments ----------------------------------
COMPAS_THRESHOLD = 10
FIG6_N = 1_000
FIG6_D = 13
FIG6_TAU = 50
