"""Ablation — Appendix A's inverted-index coverage oracle vs a literal scan.

The oracle aggregates to unique value combinations and answers ``cov(P)``
with vectorized index ANDs; the ablation compares it against the literal
one-pass-per-query scan of Definition 2, and also quantifies the win from
threading parent masks down the PATTERN-BREAKER tree.
"""

import _config as config
from _harness import emit, emit_bench, timed

from repro.core.coverage import CoverageOracle, coverage_scan
from repro.core.engine import ShardedEngine
from repro.core.mups import pattern_breaker
from repro.core.pattern_graph import PatternSpace
from repro.data.airbnb import load_airbnb

N_QUERIES = 300

#: Shard count for the sharded-engine comparison (smoke-sized split).
SHARDS = 2


def _query_patterns(space):
    import numpy as np

    rng = np.random.default_rng(17)
    return [space.random_pattern(rng) for _ in range(N_QUERIES)]


def test_ablation_oracle_vs_scan(benchmark):
    dataset = load_airbnb(n=config.AIRBNB_N, d=config.AIRBNB_D)
    space = PatternSpace.for_dataset(dataset)
    patterns = _query_patterns(space)
    oracle = CoverageOracle(dataset)

    indexed, indexed_seconds = benchmark.pedantic(
        timed,
        args=(lambda: [oracle.coverage(p) for p in patterns],),
        rounds=1,
        iterations=1,
    )
    scanned, scanned_seconds = timed(
        lambda: [coverage_scan(dataset, p) for p in patterns]
    )
    assert indexed == scanned
    emit(
        f"Ablation.A coverage oracle ({N_QUERIES} queries, n={dataset.n} "
        f"d={dataset.d})",
        ["method", "seconds"],
        [
            ("inverted index (Appendix A)", f"{indexed_seconds:.3f}"),
            ("literal scan (Definition 2)", f"{scanned_seconds:.3f}"),
        ],
    )
    # The index aggregates duplicates away, so it must win clearly on a
    # dataset with n >> distinct combinations.
    assert indexed_seconds < scanned_seconds


def test_ablation_mask_threading(benchmark):
    dataset = load_airbnb(n=config.AIRBNB_N, d=config.AIRBNB_D)
    oracle = CoverageOracle(dataset)
    tau = oracle.threshold_from_rate(1e-3)
    with_masks, with_seconds = benchmark.pedantic(
        timed,
        args=(pattern_breaker, dataset, tau),
        kwargs={"use_masks": True},
        rounds=1,
        iterations=1,
    )
    without, without_seconds = timed(
        pattern_breaker, dataset, tau, use_masks=False
    )
    assert with_masks.as_set() == without.as_set()
    emit(
        "Ablation.A2 mask threading in PATTERN-BREAKER",
        ["variant", "seconds"],
        [
            ("incremental masks", f"{with_seconds:.2f}"),
            ("per-node evaluation", f"{without_seconds:.2f}"),
        ],
    )


def test_ablation_oracle_benchmark(benchmark):
    dataset = load_airbnb(n=config.AIRBNB_N, d=config.AIRBNB_D)
    space = PatternSpace.for_dataset(dataset)
    patterns = _query_patterns(space)
    oracle = CoverageOracle(dataset)
    benchmark(lambda: [oracle.coverage(p) for p in patterns])


def _engine_workload(oracle, patterns, tau):
    """The mixed workload both backends are timed on: point queries, one
    batched frontier pass, and a full PATTERN-BREAKER traversal."""
    point = [oracle.coverage(p) for p in patterns]
    batched = list(oracle.coverage_many(patterns))
    assert point == batched
    result = pattern_breaker(oracle.dataset, tau, oracle=oracle)
    return point, result.as_set()


def test_ablation_engine_comparison(benchmark):
    dataset = load_airbnb(n=config.AIRBNB_N, d=config.AIRBNB_D)
    space = PatternSpace.for_dataset(dataset)
    patterns = _query_patterns(space)
    dense = CoverageOracle(dataset, engine="dense")
    packed = CoverageOracle(dataset, engine="packed")
    tau = dense.threshold_from_rate(1e-3)

    (dense_answers, dense_seconds) = benchmark.pedantic(
        timed,
        args=(_engine_workload, dense, patterns, tau),
        rounds=1,
        iterations=1,
    )
    packed_answers, packed_seconds = timed(_engine_workload, packed, patterns, tau)
    assert dense_answers == packed_answers

    rows = [
        (
            "dense (bool ndarray)",
            f"{dense_seconds:.3f}",
            dense.engine.index_nbytes,
        ),
        (
            "packed (uint64 bitset)",
            f"{packed_seconds:.3f}",
            packed.engine.index_nbytes,
        ),
    ]
    emit_bench(
        "engine",
        f"dense vs packed coverage engines ({N_QUERIES} queries "
        f"+ PATTERN-BREAKER, n={dataset.n} d={dataset.d})",
        ["engine", "seconds", "index bytes"],
        rows,
        {
            "n": dataset.n,
            "d": dataset.d,
            "unique": dense.unique_count,
            "queries": N_QUERIES,
            "tau": tau,
            "dense": {
                "seconds": dense_seconds,
                "index_nbytes": dense.engine.index_nbytes,
            },
            "packed": {
                "seconds": packed_seconds,
                "index_nbytes": packed.engine.index_nbytes,
            },
            "packed_over_dense_time_ratio": packed_seconds / dense_seconds,
        },
    )
    # The memory claim is deterministic; the time ratio is recorded in the
    # JSON (single-round wall clock is too noisy for a tight assertion — a
    # 2x bound only catches gross regressions).
    assert packed.engine.index_nbytes < dense.engine.index_nbytes
    assert packed_seconds <= dense_seconds * 2.0


def _hot_workload(oracle, patterns, tau):
    """The workload the three-engine comparison is timed on.

    Point queries run twice (the second pass exercises the hot-mask cache,
    which is what the re-visit-heavy production traffic looks like), then a
    batched frontier pass and a full PATTERN-BREAKER traversal.
    """
    point = [oracle.coverage(p) for p in patterns]
    repeat = [oracle.coverage(p) for p in patterns]
    batched = list(oracle.coverage_many(patterns))
    assert point == repeat == batched
    result = pattern_breaker(oracle.dataset, tau, oracle=oracle)
    return point, result.as_set()


def test_ablation_sharded_engine_comparison(benchmark):
    dataset = load_airbnb(n=config.AIRBNB_N, d=config.AIRBNB_D)
    space = PatternSpace.for_dataset(dataset)
    patterns = _query_patterns(space)
    oracles = {
        "dense": CoverageOracle(dataset, engine="dense"),
        "packed": CoverageOracle(dataset, engine="packed"),
        "sharded": CoverageOracle(
            dataset, engine=ShardedEngine(dataset, shards=SHARDS)
        ),
    }
    tau = oracles["dense"].threshold_from_rate(1e-3)

    # Every engine runs the workload twice under the same protocol and is
    # scored best-of-two: the 1.2x sharded/packed bound below is much
    # tighter than the 2x dense bound, so a single noisy measurement must
    # not fail it — and the emitted per-engine numbers stay comparable.
    answers = {}
    seconds = {}
    (answers["dense"], seconds["dense"]) = benchmark.pedantic(
        timed,
        args=(_hot_workload, oracles["dense"], patterns, tau),
        rounds=1,
        iterations=1,
    )
    _, dense_second = timed(_hot_workload, oracles["dense"], patterns, tau)
    seconds["dense"] = min(seconds["dense"], dense_second)
    for name in ("packed", "sharded"):
        answers[name], first = timed(_hot_workload, oracles[name], patterns, tau)
        _, second = timed(_hot_workload, oracles[name], patterns, tau)
        seconds[name] = min(first, second)
    assert answers["dense"] == answers["packed"] == answers["sharded"]

    rows = []
    payload = {
        "n": dataset.n,
        "d": dataset.d,
        "unique": oracles["dense"].unique_count,
        "queries": N_QUERIES,
        "tau": tau,
        "shards": oracles["sharded"].engine.shard_count,
        "engines": {},
    }
    for name, oracle in oracles.items():
        cache = oracle.engine.cache_info()
        rows.append(
            (
                name,
                f"{seconds[name]:.3f}",
                oracle.engine.index_nbytes,
                f"{cache['hit_rate']:.2%}",
            )
        )
        payload["engines"][name] = {
            "seconds": seconds[name],
            "index_nbytes": oracle.engine.index_nbytes,
            "cache": cache,
        }
    payload["sharded_over_packed_time_ratio"] = (
        seconds["sharded"] / seconds["packed"]
    )
    emit_bench(
        "sharded",
        f"dense vs packed vs sharded({SHARDS}) engines "
        f"({N_QUERIES} queries x2 + batched + PATTERN-BREAKER, "
        f"n={dataset.n} d={dataset.d})",
        ["engine", "seconds", "index bytes", "cache hit rate"],
        rows,
        payload,
    )
    # Repeated point queries must actually hit the hot-mask cache.
    for oracle in oracles.values():
        assert oracle.engine.cache_info()["hits"] >= N_QUERIES
    # Sharding adds per-shard dispatch overhead but each kernel touches
    # 1/K of the index; on the smoke workload it must stay within 1.2x of
    # the unsharded packed engine.
    assert seconds["sharded"] <= seconds["packed"] * 1.2
