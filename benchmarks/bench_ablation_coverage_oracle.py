"""Ablation — Appendix A's inverted-index coverage oracle vs a literal scan.

The oracle aggregates to unique value combinations and answers ``cov(P)``
with vectorized index ANDs; the ablation compares it against the literal
one-pass-per-query scan of Definition 2, and also quantifies the win from
threading parent masks down the PATTERN-BREAKER tree.
"""

import _config as config
from _harness import emit, timed

from repro.core.coverage import CoverageOracle, coverage_scan
from repro.core.mups import pattern_breaker
from repro.core.pattern_graph import PatternSpace
from repro.data.airbnb import load_airbnb

N_QUERIES = 300


def _query_patterns(space):
    import numpy as np

    rng = np.random.default_rng(17)
    return [space.random_pattern(rng) for _ in range(N_QUERIES)]


def test_ablation_oracle_vs_scan(benchmark):
    dataset = load_airbnb(n=config.AIRBNB_N, d=config.AIRBNB_D)
    space = PatternSpace.for_dataset(dataset)
    patterns = _query_patterns(space)
    oracle = CoverageOracle(dataset)

    indexed, indexed_seconds = benchmark.pedantic(
        timed,
        args=(lambda: [oracle.coverage(p) for p in patterns],),
        rounds=1,
        iterations=1,
    )
    scanned, scanned_seconds = timed(
        lambda: [coverage_scan(dataset, p) for p in patterns]
    )
    assert indexed == scanned
    emit(
        f"Ablation.A coverage oracle ({N_QUERIES} queries, n={dataset.n} "
        f"d={dataset.d})",
        ["method", "seconds"],
        [
            ("inverted index (Appendix A)", f"{indexed_seconds:.3f}"),
            ("literal scan (Definition 2)", f"{scanned_seconds:.3f}"),
        ],
    )
    # The index aggregates duplicates away, so it must win clearly on a
    # dataset with n >> distinct combinations.
    assert indexed_seconds < scanned_seconds


def test_ablation_mask_threading(benchmark):
    dataset = load_airbnb(n=config.AIRBNB_N, d=config.AIRBNB_D)
    oracle = CoverageOracle(dataset)
    tau = oracle.threshold_from_rate(1e-3)
    with_masks, with_seconds = benchmark.pedantic(
        timed,
        args=(pattern_breaker, dataset, tau),
        kwargs={"use_masks": True},
        rounds=1,
        iterations=1,
    )
    without, without_seconds = timed(
        pattern_breaker, dataset, tau, use_masks=False
    )
    assert with_masks.as_set() == without.as_set()
    emit(
        "Ablation.A2 mask threading in PATTERN-BREAKER",
        ["variant", "seconds"],
        [
            ("incremental masks", f"{with_seconds:.2f}"),
            ("per-node evaluation", f"{without_seconds:.2f}"),
        ],
    )


def test_ablation_oracle_benchmark(benchmark):
    dataset = load_airbnb(n=config.AIRBNB_N, d=config.AIRBNB_D)
    space = PatternSpace.for_dataset(dataset)
    patterns = _query_patterns(space)
    oracle = CoverageOracle(dataset)
    benchmark(lambda: [oracle.coverage(p) for p in patterns])
