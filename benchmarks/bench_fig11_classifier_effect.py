"""Figure 11 — the effect of lack of coverage on classification (§V-B2).

Paper protocol: hold out 20 Hispanic women (HF) as a fixed test set, train
a decision tree with {0, 20, 40, 60, 80} HF rows plus all other records,
and report HF accuracy/F1 next to overall accuracy/F1.  Paper shape:
overall stays at 0.76 / 0.70 throughout, HF accuracy starts below 0.5 and
climbs as coverage is remedied, with the knee near 40 (the statistics rule
of thumb of ~30).  Also: removing female/other (FO) or male/other (MO)
entirely yields 0.39 vs 0.59 — MO resembles the majority more.
"""

from _harness import emit

from repro.analysis.thresholds import suggest_threshold
from repro.ml.model_eval import (
    removed_subgroup_accuracy,
    subgroup_coverage_experiment,
)


def _masks(compas):
    rows = compas.rows
    hf = (rows[:, 0] == 1) & (rows[:, 2] == 2)
    fo = (rows[:, 0] == 1) & (rows[:, 2] == 3)
    mo = (rows[:, 0] == 0) & (rows[:, 2] == 3)
    return hf, fo, mo


def test_fig11_series(benchmark, compas):
    hf, fo, mo = _masks(compas)
    series = benchmark.pedantic(
        subgroup_coverage_experiment,
        args=(compas, "reoffended", hf),
        rounds=1,
        iterations=1,
    )
    emit(
        "Fig.11 coverage effect on classification (COMPAS, HF subgroup)",
        ["HF in training", "HF accuracy", "HF f1", "overall acc", "overall f1"],
        [
            (
                row.subgroup_in_training,
                f"{row.subgroup_accuracy:.2f}",
                f"{row.subgroup_f1:.2f}",
                f"{row.overall_accuracy:.2f}",
                f"{row.overall_f1:.2f}",
            )
            for row in series
        ],
    )
    # Paper shape: zero-coverage model fails the subgroup; accuracy climbs
    # with added coverage; overall accuracy is flat around 0.76.
    assert series[0].subgroup_accuracy <= 0.55
    assert series[-1].subgroup_accuracy >= series[0].subgroup_accuracy + 0.2
    overall = [row.overall_accuracy for row in series]
    assert max(overall) - min(overall) < 0.02
    assert 0.70 <= overall[0] <= 0.82
    # The knee of the curve suggests a coverage threshold in the paper's
    # 30-60 band (central-limit rule of thumb).
    knee = suggest_threshold(
        [row.subgroup_in_training for row in series],
        [row.subgroup_accuracy for row in series],
    )
    assert 20 <= knee <= 80


def test_fig11_fo_mo_rows(benchmark, compas):
    _hf, fo, mo = _masks(compas)
    fo_accuracy, mo_accuracy = benchmark.pedantic(
        lambda: (
            removed_subgroup_accuracy(compas, "reoffended", fo),
            removed_subgroup_accuracy(compas, "reoffended", mo),
        ),
        rounds=1,
        iterations=1,
    )
    emit(
        "Fig.11b excluded-subgroup accuracy (paper: FO=0.39, MO=0.59)",
        ["subgroup", "accuracy when excluded"],
        [("female/other (FO)", f"{fo_accuracy:.2f}"), ("male/other (MO)", f"{mo_accuracy:.2f}")],
    )
    assert fo_accuracy < mo_accuracy  # the paper's ordering
    assert fo_accuracy < 0.5


def test_fig11_experiment_benchmark(benchmark, compas):
    hf, _fo, _mo = _masks(compas)
    series = benchmark(
        subgroup_coverage_experiment, compas, "reoffended", hf, (0, 80)
    )
    assert len(series) == 2
