"""Kernel-tier benchmark: the fused scan kernels vs a scalar baseline.

The hottest loop in every backend is the fused AND+popcount scan behind
``count_many`` / ``restrict_children``.  This bench times three
implementations of the same ``(K, W)`` stacked-mask workload:

* **scalar** — a per-mask, per-word Python loop (what a naive port looks
  like, and the baseline the compiled tier is sold against);
* **python tier** — the numpy kernels the engines always shipped;
* **jit tier** — the numba kernels, when numba is installed.

Two pins gate the result:

* the active tier beats the scalar baseline by at least
  ``MIN_HEADLINE_SPEEDUP`` (5x) on the headline AND+popcount scan;
* routing the python tier through the ``Kernels`` dispatch costs at most
  ``MAX_PYTHON_OVERHEAD`` (1.05x) over calling the seed-path numpy
  helpers directly — the fallback must not tax the engines.

Emits the canonical ``BENCH_kernels.json`` via the shared writer; the
payload records whether numba was importable and the measured
jit-over-python ratio (``null`` without numba).  Also runnable standalone
(the CI kernel smoke job)::

    python benchmarks/bench_kernels.py --smoke
"""

import argparse
import statistics
import sys
import time

import numpy as np

import _config as config
from _harness import MIN_MEASURE_SECONDS, emit_bench

from repro.core.engine.kernels import (
    PYTHON_KERNELS,
    get_kernels,
    numba_available,
)
from repro.data.bitset import weighted_count_rows

#: The headline pin: active tier over the scalar per-mask baseline.
MIN_HEADLINE_SPEEDUP = 5.0

#: The fallback pin: python tier through dispatch over the direct seed path.
MAX_PYTHON_OVERHEAD = 1.05

N_MASKS = config.pick(128, 512)
N_WORDS = config.pick(512, 2048)


def measure(fn, *args, reps=5):
    """Median per-call seconds, calibrated to span MIN_MEASURE_SECONDS."""
    result, calibration = None, 0.0
    start = time.perf_counter()
    result = fn(*args)
    calibration = time.perf_counter() - start
    inner = max(1, int(MIN_MEASURE_SECONDS / max(calibration, 1e-9)) + 1)
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        for _ in range(inner):
            fn(*args)
        samples.append((time.perf_counter() - start) / inner)
    return result, statistics.median(samples)


def scalar_scan(window, matrix):
    """The per-mask, per-word baseline: no vectorization anywhere."""
    out = []
    for r in range(matrix.shape[0]):
        total = 0
        for i in range(matrix.shape[1]):
            total += int(window[i] & matrix[r, i]).bit_count()
        out.append(total)
    return out


def scalar_intersect(a, b):
    """Two-pointer sorted intersection in pure Python."""
    out = []
    i = j = 0
    while i < len(a) and j < len(b):
        if a[i] == b[j]:
            out.append(a[i])
            i += 1
            j += 1
        elif a[i] < b[j]:
            i += 1
        else:
            j += 1
    return out


def kernel_scan(kernels, window, matrix):
    """The fused AND+popcount scan as the engines run it."""
    return kernels.count_rows(kernels.and_family(window, matrix), None)


def seed_scan(window, matrix):
    """The pre-dispatch seed path: direct numpy helper calls."""
    return weighted_count_rows(np.bitwise_and(window[np.newaxis, :], matrix), None)


def run():
    rng = np.random.default_rng(17)
    window = rng.integers(0, 1 << 64, size=N_WORDS, dtype=np.uint64)
    matrix = rng.integers(
        0, 1 << 64, size=(N_MASKS, N_WORDS), dtype=np.uint64
    )
    sorted_a = np.unique(
        rng.integers(0, 1 << 16, size=8192, dtype=np.int64)
    ).astype(np.uint16)
    sorted_b = np.unique(
        rng.integers(0, 1 << 16, size=256, dtype=np.int64)
    ).astype(np.uint16)

    active = get_kernels(None)
    rows = []
    payload = {
        "n_masks": N_MASKS,
        "n_words": N_WORDS,
        "active_tier": active.tier,
        "pins": {
            "min_headline_speedup": MIN_HEADLINE_SPEEDUP,
            "max_python_overhead": MAX_PYTHON_OVERHEAD,
        },
    }

    # --- headline: stacked AND+popcount scan --------------------------
    scalar_counts, scalar_seconds = measure(scalar_scan, window, matrix)
    kernel_counts, kernel_seconds = measure(kernel_scan, active, window, matrix)
    assert list(kernel_counts) == scalar_counts  # same answers, always
    headline_speedup = scalar_seconds / kernel_seconds
    payload["headline"] = {
        "kernel": "and+popcount scan",
        "scalar_seconds": scalar_seconds,
        "tier_seconds": kernel_seconds,
        "speedup": headline_speedup,
    }
    rows.append(
        (
            "and+popcount scan",
            active.tier,
            f"{scalar_seconds:.5f}",
            f"{kernel_seconds:.5f}",
            f"{headline_speedup:.1f}x",
        )
    )

    # --- secondary: sorted-container intersection ---------------------
    scalar_hits, scalar_isect = measure(
        scalar_intersect, sorted_a.tolist(), sorted_b.tolist()
    )
    kernel_hits, kernel_isect = measure(
        active.intersect_sorted, sorted_a, sorted_b
    )
    assert list(kernel_hits) == scalar_hits
    payload["intersect"] = {
        "scalar_seconds": scalar_isect,
        "tier_seconds": kernel_isect,
        "speedup": scalar_isect / kernel_isect,
    }
    rows.append(
        (
            "sorted intersect",
            active.tier,
            f"{scalar_isect:.5f}",
            f"{kernel_isect:.5f}",
            f"{scalar_isect / kernel_isect:.1f}x",
        )
    )

    # --- fallback overhead: dispatch vs the direct seed path ----------
    _, seed_seconds = measure(seed_scan, window, matrix)
    _, dispatch_seconds = measure(
        kernel_scan, PYTHON_KERNELS, window, matrix
    )
    overhead = dispatch_seconds / seed_seconds
    payload["overhead"] = {
        "seed_seconds": seed_seconds,
        "python_tier_seconds": dispatch_seconds,
        "python_over_seed_ratio": overhead,
    }
    rows.append(
        (
            "python dispatch",
            "python",
            f"{seed_seconds:.5f}",
            f"{dispatch_seconds:.5f}",
            f"{overhead:.2f}x",
        )
    )

    # --- jit-over-python, when both tiers exist -----------------------
    jit_ratio = None
    if numba_available():
        jit = get_kernels("jit")
        warm = kernel_scan(jit, window, matrix)  # compile outside timing
        assert list(warm) == scalar_counts
        _, python_seconds = measure(kernel_scan, PYTHON_KERNELS, window, matrix)
        _, jit_seconds = measure(kernel_scan, jit, window, matrix)
        jit_ratio = python_seconds / jit_seconds
        rows.append(
            (
                "and+popcount scan",
                "jit vs python",
                f"{python_seconds:.5f}",
                f"{jit_seconds:.5f}",
                f"{jit_ratio:.1f}x",
            )
        )
    payload["jit"] = {
        "available": numba_available(),
        "jit_over_python": jit_ratio,
    }

    emit_bench(
        "kernels",
        f"kernel tiers vs scalar baseline ({N_MASKS} masks x {N_WORDS} words)",
        ["kernel", "tier", "baseline s", "tier s", "speedup"],
        rows,
        payload,
    )

    # The pins (a failed pin exits nonzero in the CI smoke job).
    assert headline_speedup >= MIN_HEADLINE_SPEEDUP, headline_speedup
    assert overhead <= MAX_PYTHON_OVERHEAD, overhead
    return payload


def test_bench_kernels():
    run()


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke", action="store_true", help="smoke sizes (the default)"
    )
    mode.add_argument("--full", action="store_true", help="paper-sized runs")
    parser.parse_args(argv)
    run()
    return 0


if __name__ == "__main__":
    sys.exit(main())
