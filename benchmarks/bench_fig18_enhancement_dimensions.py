"""Figure 18 — coverage enhancement vs number of attributes (AirBnB).

Paper setting: n=1M, τ=1%, d from 5 to 35, λ from 3 to 6 (λ-limited MUP
discovery feeds the hitting set).  Paper shape: runtime grows with d and
with λ, but stays practical for the shallow λ values that matter most.
"""

import pytest

import _config as config
from _harness import emit, timed

from repro.core.coverage import CoverageOracle
from repro.core.enhancement import greedy_cover, uncovered_at_level
from repro.core.mups import deepdiver
from repro.core.pattern_graph import PatternSpace
from repro.data.airbnb import load_airbnb


def _plan_for(d: int, level: int):
    dataset = load_airbnb(n=config.AIRBNB_N, d=d)
    oracle = CoverageOracle(dataset)
    tau = oracle.threshold_from_rate(config.ENHANCE_DIM_RATE)
    mups = deepdiver(dataset, tau, max_level=level).mups
    space = PatternSpace.for_dataset(dataset)
    targets = uncovered_at_level(mups, space, level)
    return targets, space


def test_fig18_series(benchmark):
    rows = []
    seconds_by_level = {level: [] for level in config.ENHANCE_LEVELS}

    def sweep():
        for d in config.ENHANCE_DIM_SWEEP:
            for level in config.ENHANCE_LEVELS:
                if level > d:
                    continue
                targets, space = _plan_for(d, level)
                plan, seconds = timed(greedy_cover, targets, space)
                seconds_by_level[level].append(seconds)
                rows.append(
                    (d, level, f"{seconds:.2f}", len(targets), len(plan.combinations))
                )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        f"Fig.18 coverage enhancement vs dimensions (AirBnB n={config.AIRBNB_N}, "
        f"rate={config.ENHANCE_DIM_RATE:g})",
        ["d", "lambda", "seconds", "targets", "collected"],
        rows,
    )
    # Paper shape: for the largest d, higher λ costs at least as much.
    levels = sorted(level for level in config.ENHANCE_LEVELS if seconds_by_level[level])
    if len(levels) >= 2:
        assert seconds_by_level[levels[0]][-1] <= seconds_by_level[levels[-1]][-1] * 1.25


@pytest.mark.parametrize("d", [max(config.ENHANCE_DIM_SWEEP)])
def test_fig18_benchmark(benchmark, d):
    level = min(config.ENHANCE_LEVELS + [d])
    targets, space = _plan_for(d, level)
    plan = benchmark.pedantic(greedy_cover, args=(targets, space), rounds=1, iterations=1)
    assert plan.targets == len(targets)
