"""Figure 13 — MUP identification vs threshold rate (BlueNile).

Paper setting: the real catalog (116,300 diamonds, 7 attributes with
cardinalities 10,4,7,8,3,3,5).  Paper shape: DEEPDIVER wins at every rate
and PATTERN-COMBINER is always slowest — the bottom level of this
high-cardinality pattern graph alone has >100K nodes, which is exactly the
bottom-up algorithm's fixed cost.
"""

import pytest

import _config as config
from _harness import emit, fmt_rate, timed

from repro.core.coverage import CoverageOracle
from repro.core.mups import deepdiver, pattern_breaker, pattern_combiner
from repro.core.pattern_graph import PatternSpace

ALGORITHMS = [
    ("PATTERN-BREAKER", pattern_breaker),
    ("PATTERN-COMBINER", pattern_combiner),
    ("DEEPDIVER", deepdiver),
]


def test_fig13_series(benchmark, bluenile):
    oracle = CoverageOracle(bluenile)
    space = PatternSpace.for_dataset(bluenile)
    # The paper's observation about the graph's width at the bottom level.
    assert space.combination_count() > 100_000
    rows = []
    combiner_seconds = {}
    other_seconds = {}

    def sweep():
        for rate in config.BLUENILE_RATES:
            tau = oracle.threshold_from_rate(rate)
            reference = None
            for name, fn in ALGORITHMS:
                result, seconds = timed(fn, bluenile, tau)
                if reference is None:
                    reference = result.as_set()
                else:
                    assert result.as_set() == reference, f"{name} disagrees at {rate}"
                rows.append((fmt_rate(rate), tau, name, f"{seconds:.2f}", len(result)))
                if name == "PATTERN-COMBINER":
                    combiner_seconds[rate] = seconds
                else:
                    other_seconds.setdefault(rate, []).append(seconds)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        f"Fig.13 MUP identification vs threshold (BlueNile n={bluenile.n} d=7)",
        ["rate", "tau", "algorithm", "seconds", "mups"],
        rows,
    )
    # Paper shape: the bottom-up algorithm pays the >100K-node bottom level
    # as a fixed cost, so once the rest of the graph is cheap (high rates,
    # MUPs near the top) it loses by a wide margin.
    high = max(config.BLUENILE_RATES)
    assert combiner_seconds[high] > max(other_seconds[high])


@pytest.mark.parametrize("name,fn", ALGORITHMS, ids=[a for a, _ in ALGORITHMS])
def test_fig13_benchmark(benchmark, bluenile, name, fn):
    oracle = CoverageOracle(bluenile)
    tau = oracle.threshold_from_rate(config.BLUENILE_RATES[0])
    result = benchmark.pedantic(fn, args=(bluenile, tau), rounds=1, iterations=1)
    assert result.threshold == tau
