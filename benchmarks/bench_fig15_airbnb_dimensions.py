"""Figure 15 — MUP identification vs number of attributes (AirBnB).

Paper setting: n=1M, τ rate 0.1%, d projected from 5 to 17.  Paper shape:
the pattern graph — and with it the number of MUPs and the runtime — grows
exponentially in d, yet all algorithms finish in reasonable time.
"""

import pytest

import _config as config
from _harness import emit, timed

from repro.core.coverage import CoverageOracle
from repro.core.mups import deepdiver, pattern_breaker, pattern_combiner
from repro.data.airbnb import load_airbnb

ALGORITHMS = [
    ("PATTERN-BREAKER", pattern_breaker),
    ("PATTERN-COMBINER", pattern_combiner),
    ("DEEPDIVER", deepdiver),
]


def test_fig15_series(benchmark):
    rows = []
    mup_counts = []

    def sweep():
        for d in config.DIMENSION_SWEEP:
            dataset = load_airbnb(n=config.AIRBNB_N, d=d)
            oracle = CoverageOracle(dataset)
            tau = oracle.threshold_from_rate(config.DIMENSION_RATE)
            reference = None
            for name, fn in ALGORITHMS:
                result, seconds = timed(fn, dataset, tau)
                if reference is None:
                    reference = result.as_set()
                    mup_counts.append(len(result))
                else:
                    assert result.as_set() == reference
                rows.append((d, tau, name, f"{seconds:.2f}", len(result)))

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        f"Fig.15 MUP identification vs dimensions (AirBnB n={config.AIRBNB_N}, "
        f"rate={config.DIMENSION_RATE:g})",
        ["d", "tau", "algorithm", "seconds", "mups"],
        rows,
    )
    # Paper shape: MUP count grows (roughly exponentially) with d.
    assert mup_counts == sorted(mup_counts)
    assert mup_counts[-1] > mup_counts[0]


@pytest.mark.parametrize("d", [max(config.DIMENSION_SWEEP)])
def test_fig15_benchmark(benchmark, d):
    dataset = load_airbnb(n=config.AIRBNB_N, d=d)
    oracle = CoverageOracle(dataset)
    tau = oracle.threshold_from_rate(config.DIMENSION_RATE)
    result = benchmark.pedantic(deepdiver, args=(dataset, tau), rounds=1, iterations=1)
    assert result.threshold == tau
