"""Hierarchy benchmarks: drill-down MUP search and the bucket-width sweep.

Two pins, both over high-cardinality scenarios where the hierarchy
machinery is supposed to earn its keep:

* **Drill-down search**: ``find_mups_hierarchical`` (coarsest-first,
  coarse coverage bounds certifying fine candidates) must be at least
  2x faster than a flat ``find_mups`` on the base dataset, after
  cross-checking that the base-level MUP set is **bit-identical**.
* **Bucket-width sweep**: ``bucketize_sweep`` over nested bucket counts
  of a numeric column must be at least 3x faster than independent
  ``bucketized_dataset`` + ``find_mups`` runs per count, again after
  checking every count's MUP set is bit-identical.

Emits the canonical ``BENCH_hierarchy.json`` via the shared writer.
Also runnable standalone (the CI hierarchy smoke job):

    python benchmarks/bench_hierarchy.py --smoke
"""

import argparse
import statistics
import sys
import time

import numpy as np

import _config as config
from _harness import MIN_MEASURE_SECONDS, emit_bench, timed

from repro.analysis.hierarchy import (
    HierarchyStack,
    bucketize_sweep,
    bucketized_dataset,
    find_mups_hierarchical,
)
from repro.core.mups import find_mups
from repro.data.hierarchy import AttributeHierarchy
from repro.data.scenarios import scenario_dataset

#: Pin A: flat search must cost at least this factor over drill-down.
MIN_HIERARCHY_SPEEDUP = 2.0

#: Pin B: independent per-width runs must cost this factor over one sweep.
MIN_SWEEP_SPEEDUP = 3.0

#: Nested bucket counts for the width sweep (each divides the largest).
BUCKET_COUNTS = (2, 3, 4, 6, 8, 12, 24)

REPS = 5


def _blocks(cardinality, size):
    return [code // size for code in range(cardinality)]


def _stack(dataset):
    """Blocks-of-4 chains, with a second c/4-group level when c >= 32."""
    chains = {}
    for name, cardinality in zip(
        dataset.schema.names, dataset.cardinalities
    ):
        levels = [AttributeHierarchy.of(name, _blocks(cardinality, 4))]
        if cardinality >= 32:
            levels.append(
                AttributeHierarchy.of(
                    name, _blocks(cardinality, cardinality // 4)
                )
            )
        chains[name] = levels
    return HierarchyStack.of(dataset, chains)


def hierarchy_workloads(full=False):
    """(name, dataset, stack, tau) for the drill-down pin."""
    pick = (lambda smoke, big: big if full else smoke)
    dataset = scenario_dataset(
        "zipf",
        pick(8_000, 60_000),
        pick((96, 48, 16), (64, 32, 16)),
        seed=7,
        skew=pick(1.8, 2.0),
    )
    return [("zipf-hicard", dataset, _stack(dataset), pick(20, 60))]


def sweep_workloads(full=False):
    """(name, dataset, values, tau) for the bucket-width pin."""
    pick = (lambda smoke, big: big if full else smoke)
    n = pick(8_000, 60_000)
    dataset = scenario_dataset("zipf", n, (6, 5, 4), seed=11, skew=1.4)
    values = np.random.default_rng(19).lognormal(0.0, 1.0, size=n)
    return [("zipf-lognormal", dataset, values, pick(8, 40))]


def run_hierarchical(dataset, stack, tau):
    return find_mups_hierarchical(
        dataset, stack, threshold=tau, remedies=False
    )


def run_flat(dataset, tau):
    return find_mups(dataset, threshold=tau)


def run_bucket_sweep(dataset, values, tau):
    return bucketize_sweep(dataset, values, BUCKET_COUNTS, threshold=tau)


def run_bucket_independent(dataset, values, tau):
    return {
        count: find_mups(
            bucketized_dataset(dataset, values, count), threshold=tau
        ).mups
        for count in BUCKET_COUNTS
    }


def measure(fn, *args, reps=REPS):
    """Median per-run seconds, calibrated like the engine benches."""
    _, calibration = timed(fn, *args)
    inner = max(1, int(MIN_MEASURE_SECONDS / max(calibration, 1e-9)) + 1)
    samples = []
    for _ in range(reps):
        start = time.perf_counter()
        for _ in range(inner):
            fn(*args)
        samples.append((time.perf_counter() - start) / inner)
    return statistics.median(samples)


def run(full=False):
    rows = []
    payload = {
        "min_hierarchy_speedup": MIN_HIERARCHY_SPEEDUP,
        "min_sweep_speedup": MIN_SWEEP_SPEEDUP,
        "hierarchy": {},
        "bucket_sweep": {},
    }

    for name, dataset, stack, tau in hierarchy_workloads(full):
        hierarchical = run_hierarchical(dataset, stack, tau)
        flat = run_flat(dataset, tau)
        # Bit-identical base-level answers, or the speedup is meaningless.
        assert hierarchical.at_level(0).mups == flat.mups, name
        hier_seconds = measure(run_hierarchical, dataset, stack, tau)
        flat_seconds = measure(run_flat, dataset, tau)
        speedup = flat_seconds / hier_seconds
        payload["hierarchy"][name] = {
            "n": dataset.n,
            "cardinalities": list(dataset.cardinalities),
            "depth": stack.depth,
            "threshold": tau,
            "hierarchical_seconds": hier_seconds,
            "flat_seconds": flat_seconds,
            "speedup": speedup,
            "mups": len(flat.mups),
            "evaluations": hierarchical.stats.coverage_evaluations,
        }
        rows.append(
            (
                f"drill-down/{name}",
                dataset.n,
                tau,
                f"{hier_seconds:.4f}",
                f"{flat_seconds:.4f}",
                f"{speedup:.1f}x",
            )
        )

    for name, dataset, values, tau in sweep_workloads(full):
        sweep = run_bucket_sweep(dataset, values, tau)
        independent = run_bucket_independent(dataset, values, tau)
        # Bit-identical answers at every bucket count.
        for count in BUCKET_COUNTS:
            assert sweep.point_for(count).result.mups == independent[count], (
                name,
                count,
            )
        sweep_seconds = measure(run_bucket_sweep, dataset, values, tau)
        independent_seconds = measure(
            run_bucket_independent, dataset, values, tau
        )
        speedup = independent_seconds / sweep_seconds
        payload["bucket_sweep"][name] = {
            "n": dataset.n,
            "bucket_counts": list(BUCKET_COUNTS),
            "threshold": tau,
            "sweep_seconds": sweep_seconds,
            "independent_seconds": independent_seconds,
            "speedup": speedup,
            "mups_per_count": {
                str(count): len(independent[count])
                for count in BUCKET_COUNTS
            },
        }
        rows.append(
            (
                f"bucket-sweep/{name}",
                dataset.n,
                tau,
                f"{sweep_seconds:.4f}",
                f"{independent_seconds:.4f}",
                f"{speedup:.1f}x",
            )
        )

    emit_bench(
        "hierarchy",
        "drill-down search vs flat; bucket sweep vs independent runs",
        ["workload", "n", "tau", "fast s", "baseline s", "speedup"],
        rows,
        payload,
    )
    # The pins: the hierarchy machinery must actually pay for itself.
    for name, entry in payload["hierarchy"].items():
        assert entry["speedup"] >= MIN_HIERARCHY_SPEEDUP, (
            name,
            entry["speedup"],
        )
    for name, entry in payload["bucket_sweep"].items():
        assert entry["speedup"] >= MIN_SWEEP_SPEEDUP, (name, entry["speedup"])
    return payload


def test_bench_hierarchy():
    run(full=config.FULL)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke", action="store_true", help="smoke sizes (the default)"
    )
    mode.add_argument("--full", action="store_true", help="paper-sized runs")
    args = parser.parse_args(argv)
    run(full=args.full or config.FULL)
    return 0


if __name__ == "__main__":
    sys.exit(main())
