"""Shared helpers for the benchmark harness.

Each bench module regenerates one table or figure from the paper's
evaluation section: it computes the same series the paper plots, prints it
as an aligned table (so ``pytest benchmarks/ --benchmark-only -s`` shows the
rows), and appends it to ``benchmarks/results/`` as JSON for EXPERIMENTS.md.
"""

from __future__ import annotations

import json

import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro._util import format_table

RESULTS_DIR = Path(__file__).parent / "results"


def timed(fn: Callable, *args, **kwargs):
    """Run ``fn`` once; return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def emit(figure: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a figure's series and persist it under benchmarks/results/."""
    rows = [list(r) for r in rows]
    print()
    print(f"=== {figure} ===")
    print(format_table(headers, rows))
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"figure": figure, "headers": list(headers), "rows": rows}
    path = RESULTS_DIR / f"{figure.split(' ')[0].lower().replace('.', '')}.json"
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def emit_bench(
    name: str,
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    payload: dict,
) -> Path:
    """Print an engine benchmark's table and write its canonical artifact.

    The single writer for every ``BENCH_*.json``: the table and the
    machine-readable payload land in **one** ``BENCH_<name>.json`` under
    ``benchmarks/results/`` (bench scripts must not write result files
    themselves — two writers once produced divergent
    ``bench_sharded.json`` / ``BENCH_sharded.json`` copies).
    """
    rows = [list(r) for r in rows]
    print()
    print(f"=== BENCH_{name} {title} ===")
    print(format_table(headers, rows))
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "title": title,
        "headers": list(headers),
        "rows": rows,
        **payload,
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
    return path


def fmt_rate(rate: float) -> str:
    return f"{rate:g}"
