"""Shared helpers for the benchmark harness.

Each bench module regenerates one table or figure from the paper's
evaluation section: it computes the same series the paper plots, prints it
as an aligned table (so ``pytest benchmarks/ --benchmark-only -s`` shows the
rows), and appends it to ``benchmarks/results/`` as JSON for EXPERIMENTS.md.
"""

from __future__ import annotations

import json

import time
from pathlib import Path
from typing import Callable, Iterable, Sequence

from repro._util import format_table

RESULTS_DIR = Path(__file__).parent / "results"


def timed(fn: Callable, *args, **kwargs):
    """Run ``fn`` once; return ``(result, seconds)``."""
    start = time.perf_counter()
    result = fn(*args, **kwargs)
    return result, time.perf_counter() - start


def emit(figure: str, headers: Sequence[str], rows: Iterable[Sequence]) -> None:
    """Print a figure's series and persist it under benchmarks/results/."""
    rows = [list(r) for r in rows]
    print()
    print(f"=== {figure} ===")
    print(format_table(headers, rows))
    RESULTS_DIR.mkdir(exist_ok=True)
    payload = {"figure": figure, "headers": list(headers), "rows": rows}
    path = RESULTS_DIR / f"{figure.split(' ')[0].lower().replace('.', '')}.json"
    with open(path, "w") as handle:
        json.dump(payload, handle, indent=2)


def emit_bench(
    name: str,
    title: str,
    headers: Sequence[str],
    rows: Iterable[Sequence],
    payload: dict,
) -> Path:
    """Print an engine benchmark's table and write its canonical artifact.

    The single writer for every ``BENCH_*.json``: the table and the
    machine-readable payload land in **one** ``BENCH_<name>.json`` under
    ``benchmarks/results/`` (bench scripts must not write result files
    themselves — two writers once produced divergent
    ``bench_sharded.json`` / ``BENCH_sharded.json`` copies).
    """
    rows = [list(r) for r in rows]
    print()
    print(f"=== BENCH_{name} {title} ===")
    print(format_table(headers, rows))
    RESULTS_DIR.mkdir(exist_ok=True)
    path = RESULTS_DIR / f"BENCH_{name}.json"
    document = {
        "bench": name,
        "title": title,
        "headers": list(headers),
        "rows": rows,
        **payload,
    }
    with open(path, "w") as handle:
        json.dump(document, handle, indent=2)
    return path


def fmt_rate(rate: float) -> str:
    return f"{rate:g}"


# ----------------------------------------------------------------------
# shared engine-benchmark workload (bench_planner / bench_compressed)
# ----------------------------------------------------------------------

#: Calibrate each timed sample to span at least this long, so millisecond
#: workloads don't turn scheduler jitter on shared CI runners into
#: spurious ratio failures.
MIN_MEASURE_SECONDS = 0.05


def random_patterns(dataset, k: int, seed: int, wildcard_rate: float = 0.6):
    """``k`` random patterns over ``dataset`` (X with ``wildcard_rate``)."""
    import numpy as np

    from repro.core.pattern import Pattern, X

    rng = np.random.default_rng(seed)
    patterns = []
    for _ in range(k):
        values = [
            X if rng.random() < wildcard_rate else int(rng.integers(c))
            for c in dataset.cardinalities
        ]
        patterns.append(Pattern(values))
    return patterns


def mask_workload(engine, patterns):
    """The standard batched coverage workload: match masks + count_many."""
    masks = [engine.match_mask(p) for p in patterns]
    return engine.count_many(masks)


def measure_engines(engines, patterns, reps: int = 5):
    """Median per-run seconds for each engine, sampled in interleaved rounds.

    Fairness matters more than raw precision here: every engine gets the
    same number of samples, rounds interleave so machine drift lands on
    all engines evenly, a calibration pass sizes per-engine inner repeat
    counts so each sample spans :data:`MIN_MEASURE_SECONDS`, and the
    median — not the min, which biases toward whoever got more lucky
    draws — summarizes each engine.  Returns ``({label: seconds},
    {label: counts})``; the counts are for cross-engine answer
    verification.
    """
    import statistics

    inner = {}
    samples = {label: [] for label, _ in engines}
    counts = {}
    for label, engine in engines:
        result, calibration = timed(mask_workload, engine, patterns)
        counts[label] = list(result)
        inner[label] = max(
            1, int(MIN_MEASURE_SECONDS / max(calibration, 1e-9)) + 1
        )
    for _ in range(reps):
        for label, engine in engines:
            start = time.perf_counter()
            for _ in range(inner[label]):
                mask_workload(engine, patterns)
            samples[label].append(
                (time.perf_counter() - start) / inner[label]
            )
    return {
        label: statistics.median(runs) for label, runs in samples.items()
    }, counts
