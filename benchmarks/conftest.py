"""Benchmark-session fixtures: shared datasets built once per run."""

from __future__ import annotations

import pytest

import _config as config
from repro.data.airbnb import load_airbnb
from repro.data.bluenile import load_bluenile
from repro.data.compas import load_compas


@pytest.fixture(scope="session")
def airbnb():
    return load_airbnb(n=config.AIRBNB_N, d=config.AIRBNB_D)


@pytest.fixture(scope="session")
def bluenile():
    return load_bluenile(n=config.BLUENILE_N)


@pytest.fixture(scope="session")
def compas():
    return load_compas()
