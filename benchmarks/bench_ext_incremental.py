"""Extension — incremental MUP maintenance vs recompute-from-scratch.

Between acquisitions, a dataset owner receives small deliveries of new
tuples.  `IncrementalMupIndex` repairs the MUP set by searching only below
the MUPs a delivery resolved; this bench compares that against re-running
DEEPDIVER from scratch after every delivery.
"""

import numpy as np

from _harness import emit, timed

from repro.core.incremental import IncrementalMupIndex
from repro.core.mups import deepdiver
from repro.data.airbnb import load_airbnb

N = 20_000
D = 10
TAU = 20
DELIVERIES = 8
DELIVERY_SIZE = 5


def _deliveries(dataset):
    rng = np.random.default_rng(41)
    batches = []
    for _ in range(DELIVERIES):
        batches.append(
            [
                tuple(int(rng.integers(0, c)) for c in dataset.cardinalities)
                for _ in range(DELIVERY_SIZE)
            ]
        )
    return batches


def test_incremental_vs_recompute(benchmark):
    dataset = load_airbnb(n=N, d=D)
    batches = _deliveries(dataset)

    def incremental_run():
        index = IncrementalMupIndex(dataset, threshold=TAU)
        snapshots = []
        for batch in batches:
            index.add_rows(batch)
            snapshots.append(set(index.mups()))
        return index, snapshots

    (index, snapshots), incremental_seconds = benchmark.pedantic(
        timed, args=(incremental_run,), rounds=1, iterations=1
    )

    def recompute_run():
        current = dataset
        snapshots = []
        for batch in batches:
            current = current.append_rows(batch)
            snapshots.append(deepdiver(current, TAU).as_set())
        return snapshots

    scratch_snapshots, scratch_seconds = timed(recompute_run)

    # Correctness first: every snapshot must match the scratch answer.
    assert snapshots == scratch_snapshots
    emit(
        f"Ext.incremental MUP maintenance ({DELIVERIES} deliveries of "
        f"{DELIVERY_SIZE} rows, n={N} d={D} tau={TAU})",
        ["strategy", "seconds (incl. initial identification)"],
        [
            ("incremental repair", f"{incremental_seconds:.2f}"),
            ("recompute each delivery", f"{scratch_seconds:.2f}"),
        ],
    )
