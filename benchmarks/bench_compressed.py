"""Compressed-vs-packed density sweep: memory footprint and latency.

The compressed backend's value proposition is data-dependent — its index
shrinks with the value domain's sparsity while the packed word space does
not — so this bench sweeps attribute cardinality from dense to sparse at
a fixed row count and records, per density point, both engines' index
bytes and the latency of the standard batched coverage workload (match
masks + ``count_many``), plus what the auto planner picks there.

Two pins back the planner's calibrated cost model:

* at the **sparsest** point the compressed index is at least **4× smaller**
  than packed, and the planner auto-selects ``compressed`` (the rationale
  is what ``--explain-plan`` prints);
* at the **densest** point compressed latency stays within **1.5×** of
  packed — the regime where the planner must keep choosing packed.

Emits the canonical ``BENCH_compressed.json`` via the shared writer.
Also runnable standalone (the CI planner smoke job):

    python benchmarks/bench_compressed.py --smoke
"""

import argparse
import sys

import _config as config
from _harness import emit_bench, measure_engines, random_patterns

from repro.core.engine import CompressedEngine, PackedBitsetEngine, plan_engine
from repro.data.synthetic import random_categorical_dataset

#: The memory pin at the sparse end of the sweep.
MIN_SPARSE_MEMORY_RATIO = 4.0

#: The latency pin at the dense end of the sweep.
MAX_DENSE_LATENCY_RATIO = 1.5

SMOKE_SIZES = (40_000, 256)  # (rows, masks)
FULL_SIZES = (400_000, 1024)

#: The sweep: densest first, sparsest last.
DENSITY_SWEEP = [
    ("dense-4x4x3", (4, 4, 3)),
    ("mid-16x12x8", (16, 12, 8)),
    ("sparse-48x40x32", (48, 40, 32)),
    ("sparsest-96x80x64", (96, 80, 64)),
]


def run(full=False):
    n_rows, n_masks = FULL_SIZES if full else SMOKE_SIZES
    rows = []
    payload = {
        "n_rows": n_rows,
        "min_sparse_memory_ratio": MIN_SPARSE_MEMORY_RATIO,
        "max_dense_latency_ratio": MAX_DENSE_LATENCY_RATIO,
        "workloads": {},
    }
    for name, cardinalities in DENSITY_SWEEP:
        dataset = random_categorical_dataset(
            n_rows, cardinalities, seed=23, skew=0.0
        )
        patterns = random_patterns(dataset, n_masks, seed=17)
        packed = PackedBitsetEngine(dataset, mask_cache_size=0)
        compressed = CompressedEngine(dataset, mask_cache_size=0)
        seconds, counts = measure_engines(
            [("packed", packed), ("compressed", compressed)], patterns
        )
        assert counts["compressed"] == counts["packed"], name
        memory_ratio = packed.index_nbytes / max(compressed.index_nbytes, 1)
        latency_ratio = seconds["compressed"] / seconds["packed"]
        plan = plan_engine(dataset)
        payload["workloads"][name] = {
            "cardinalities": list(cardinalities),
            "index_density": plan.stats.index_density,
            "packed_nbytes": packed.index_nbytes,
            "compressed_nbytes": compressed.index_nbytes,
            "memory_ratio": memory_ratio,
            "packed_seconds": seconds["packed"],
            "compressed_seconds": seconds["compressed"],
            "latency_ratio": latency_ratio,
            "planned_backend": plan.config.backend,
            "rationale": list(plan.rationale),
        }
        rows.append(
            (
                name,
                f"{plan.stats.index_density:.4f}",
                f"{packed.index_nbytes}",
                f"{compressed.index_nbytes}",
                f"{memory_ratio:.1f}x",
                f"{latency_ratio:.2f}x",
                plan.config.backend,
            )
        )
    emit_bench(
        "compressed",
        f"compressed vs packed density sweep ({n_rows} rows, {n_masks} masks)",
        [
            "workload",
            "density",
            "packed B",
            "compressed B",
            "mem ratio",
            "latency ratio",
            "planned",
        ],
        rows,
        payload,
    )
    densest = payload["workloads"][DENSITY_SWEEP[0][0]]
    sparsest = payload["workloads"][DENSITY_SWEEP[-1][0]]
    # The memory pin: compressed wins >= 4x where the domain is sparse,
    # and the planner's cost model notices (visible via --explain-plan) —
    # on every workload under the sparsity cutoff, not just the extreme.
    assert sparsest["memory_ratio"] >= MIN_SPARSE_MEMORY_RATIO, sparsest
    assert sparsest["planned_backend"] == "compressed", sparsest
    assert (
        payload["workloads"]["sparse-48x40x32"]["planned_backend"]
        == "compressed"
    ), payload["workloads"]["sparse-48x40x32"]
    # The latency pin: compressed never costs more than 1.5x packed even
    # where its containers degenerate to bitmap/run chunks.
    assert densest["latency_ratio"] <= MAX_DENSE_LATENCY_RATIO, densest
    assert densest["planned_backend"] != "compressed", densest
    return payload


def test_bench_compressed():
    run(full=config.FULL)


def main(argv=None):
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    mode = parser.add_mutually_exclusive_group()
    mode.add_argument(
        "--smoke", action="store_true", help="smoke sizes (the default)"
    )
    mode.add_argument("--full", action="store_true", help="paper-sized runs")
    args = parser.parse_args(argv)
    run(full=args.full or config.FULL)
    return 0


if __name__ == "__main__":
    sys.exit(main())
