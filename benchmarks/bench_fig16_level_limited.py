"""Figure 16 — level-limited DEEPDIVER scaling to tens of attributes.

Paper setting: n=1M, τ rate 0.1%, d from 10 to 35, with the exploration
depth capped at max ℓ ∈ {2, 4, 6, 8}.  Paper shape: with a level cap the
search scales to 35 attributes (level-2 MUPs in ~10s in the paper's Java),
and lower caps are strictly cheaper — the dangerous shallow MUPs stay
findable even when the full graph is hopeless.
"""

import pytest

import _config as config
from _harness import emit, timed

from repro.core.coverage import CoverageOracle
from repro.core.mups import deepdiver
from repro.data.airbnb import load_airbnb


def test_fig16_series(benchmark):
    rows = []
    seconds_by_cap = {cap: [] for cap in config.LEVEL_LIMITS}

    def sweep():
        for d in config.LEVEL_LIMITED_DIMS:
            dataset = load_airbnb(n=config.LEVEL_LIMITED_N, d=d)
            oracle = CoverageOracle(dataset)
            tau = oracle.threshold_from_rate(config.LEVEL_LIMITED_RATE)
            for cap in config.LEVEL_LIMITS:
                result, seconds = timed(deepdiver, dataset, tau, max_level=cap)
                seconds_by_cap[cap].append(seconds)
                rows.append((d, cap, f"{seconds:.2f}", len(result)))
                assert all(p.level <= cap for p in result)

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        f"Fig.16 level-limited DEEPDIVER (AirBnB n={config.LEVEL_LIMITED_N}, "
        f"rate={config.LEVEL_LIMITED_RATE:g})",
        ["d", "max level", "seconds", "mups"],
        rows,
    )
    # Paper shape: smaller caps are cheaper at the largest d.
    caps = sorted(config.LEVEL_LIMITS)
    if len(caps) >= 2:
        assert seconds_by_cap[caps[0]][-1] <= seconds_by_cap[caps[-1]][-1] * 1.25


def test_fig16_capped_equals_filtered_full(benchmark):
    # Semantics check at a small d: the capped result equals the full
    # result filtered to the cap.
    dataset = load_airbnb(n=10_000, d=10)
    oracle = CoverageOracle(dataset)
    tau = oracle.threshold_from_rate(1e-3)

    def check():
        full = deepdiver(dataset, tau)
        for cap in (1, 2, 3):
            capped = deepdiver(dataset, tau, max_level=cap)
            assert capped.as_set() == {p for p in full if p.level <= cap}

    benchmark.pedantic(check, rounds=1, iterations=1)


@pytest.mark.parametrize("cap", [min(config.LEVEL_LIMITS)])
def test_fig16_benchmark(benchmark, cap):
    d = max(config.LEVEL_LIMITED_DIMS)
    dataset = load_airbnb(n=config.LEVEL_LIMITED_N, d=d)
    oracle = CoverageOracle(dataset)
    tau = oracle.threshold_from_rate(config.LEVEL_LIMITED_RATE)
    result = benchmark.pedantic(
        deepdiver, args=(dataset, tau), kwargs={"max_level": cap}, rounds=1, iterations=1
    )
    assert result.max_level == cap
