"""Figure 19 — coverage enhancement input/output sizes (AirBnB).

Paper setting: as Figure 18; "input" is the number of uncovered patterns
to hit at level λ, "output" the number of value combinations collected.
Paper shape: both grow with d and λ, and the output is *orders of
magnitude smaller* than the input — each collected combination hits many
uncovered patterns at once, which is the entire point of the hitting-set
formulation.
"""

import _config as config
from _harness import emit

from repro.core.coverage import CoverageOracle
from repro.core.enhancement import greedy_cover, uncovered_at_level
from repro.core.mups import deepdiver
from repro.core.pattern_graph import PatternSpace
from repro.data.airbnb import load_airbnb


def test_fig19_series(benchmark):
    rows = []
    ratios = []

    def sweep():
        for d in config.ENHANCE_DIM_SWEEP:
            dataset = load_airbnb(n=config.AIRBNB_N, d=d)
            oracle = CoverageOracle(dataset)
            tau = oracle.threshold_from_rate(config.ENHANCE_DIM_RATE)
            space = PatternSpace.for_dataset(dataset)
            for level in config.ENHANCE_LEVELS:
                if level > d:
                    continue
                mups = deepdiver(dataset, tau, max_level=level).mups
                targets = uncovered_at_level(mups, space, level)
                plan = greedy_cover(targets, space)
                rows.append((d, level, len(targets), len(plan.combinations)))
                if targets:
                    ratios.append(len(plan.combinations) / len(targets))

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    emit(
        f"Fig.19 enhancement input/output sizes (AirBnB n={config.AIRBNB_N}, "
        f"rate={config.ENHANCE_DIM_RATE:g})",
        ["d", "lambda", "input (targets)", "output (collected)"],
        rows,
    )
    # Paper shape: the output is much smaller than the input whenever the
    # input is non-trivial — except the degenerate λ = d case, where every
    # target is a full combination and can only be hit by itself.
    big = [
        (inputs, outputs)
        for d, level, inputs, outputs in rows
        if inputs >= 20 and level < d
    ]
    assert big, "expected at least one non-trivial setting"
    for inputs, outputs in big:
        assert outputs <= inputs / 2
