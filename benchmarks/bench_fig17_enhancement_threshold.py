"""Figure 17 — coverage enhancement vs threshold rate (AirBnB, d=13).

Paper setting: n=1M, d=13, τ rate from 1e-6 to 1e-2, max covered level λ
from 3 to 6; the naive hitting-set implementation finishes only at the
single smallest setting while GREEDY finishes in seconds everywhere.
Paper shape: GREEDY runtime grows with both λ and the rate (more uncovered
patterns to hit).
"""

import pytest

import _config as config
from _harness import emit, fmt_rate, timed

from repro.core.coverage import CoverageOracle
from repro.core.enhancement import greedy_cover, naive_greedy_cover, uncovered_at_level
from repro.core.mups import deepdiver
from repro.core.pattern_graph import PatternSpace


def _targets(dataset, rate, level):
    oracle = CoverageOracle(dataset)
    tau = oracle.threshold_from_rate(rate)
    # Only MUPs at level <= λ matter for the target set (Appendix C), so the
    # identification step runs level-capped.
    mups = deepdiver(dataset, tau, max_level=level).mups
    space = PatternSpace.for_dataset(dataset)
    return uncovered_at_level(mups, space, level), space


def test_fig17_series(benchmark, airbnb):
    dataset = airbnb.project(list(range(config.ENHANCE_D)))
    rows = []
    greedy_seconds = {}
    plans = {}

    def sweep():
        for rate in config.ENHANCE_RATES:
            for level in config.ENHANCE_LEVELS:
                targets, space = _targets(dataset, rate, level)
                plan, seconds = timed(greedy_cover, targets, space)
                greedy_seconds[(rate, level)] = seconds
                rows.append(
                    (
                        fmt_rate(rate),
                        level,
                        "GREEDY",
                        f"{seconds:.2f}",
                        len(targets),
                        len(plan.combinations),
                    )
                )
        # The naive baseline at the smallest setting only (the paper's lone
        # blue triangle in the top-left of the figure).  The deepest level
        # is paired with the smallest rate so the baseline has a non-empty
        # target set to chew on.
        rate, level = config.ENHANCE_RATES[0], config.ENHANCE_LEVELS[-1]
        targets, space = _targets(dataset, rate, level)
        naive_plan, naive_seconds = timed(naive_greedy_cover, targets, space)
        greedy_plan, _ = timed(greedy_cover, targets, space)
        plans["naive"] = naive_plan
        plans["greedy"] = greedy_plan
        rows.append(
            (
                fmt_rate(rate),
                level,
                "NAIVE",
                f"{naive_seconds:.2f}",
                len(targets),
                len(naive_plan.combinations),
            )
        )

    benchmark.pedantic(sweep, rounds=1, iterations=1)
    naive_plan, greedy_plan = plans["naive"], plans["greedy"]
    del plans
    emit(
        f"Fig.17 coverage enhancement vs threshold (AirBnB d={config.ENHANCE_D})",
        ["rate", "lambda", "algorithm", "seconds", "targets", "collected"],
        rows,
    )
    # Both implementations are greedy; tie-breaking can shift a few picks,
    # but the covers must be complete and of comparable size.
    assert not naive_plan.unhittable and not greedy_plan.unhittable
    sizes = sorted([len(naive_plan.combinations), len(greedy_plan.combinations)])
    assert sizes[1] <= max(sizes[0] * 2, sizes[0] + 2)
    # Paper shape: a higher λ means more targets and more work.
    lo_level, hi_level = min(config.ENHANCE_LEVELS), max(config.ENHANCE_LEVELS)
    hi_rate = max(config.ENHANCE_RATES)
    if lo_level != hi_level:
        lo_targets, _ = _targets(dataset, hi_rate, lo_level)
        hi_targets, _ = _targets(dataset, hi_rate, hi_level)
        assert len(hi_targets) >= len(lo_targets)


@pytest.mark.parametrize("level", [min(config.ENHANCE_LEVELS)])
def test_fig17_benchmark(benchmark, airbnb, level):
    dataset = airbnb.project(list(range(config.ENHANCE_D)))
    targets, space = _targets(dataset, max(config.ENHANCE_RATES), level)
    plan = benchmark.pedantic(greedy_cover, args=(targets, space), rounds=1, iterations=1)
    assert plan.targets == len(targets)
